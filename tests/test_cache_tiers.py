"""Tiered cache: hot/pack/legacy interplay, batched I/O, chaos."""

import json
import os
import threading

import pytest

from repro.core.perf_model import PredictedTime
from repro.engine import SimulationCache
from repro.engine.cache import CacheStats, outcome_to_payload
from repro.engine.pack import INDEX_FILENAME, segment_name
from repro.errors import ConfigurationError, OutOfMemoryError
from repro.simulator import TimingResult


def _predicted(i):
    return PredictedTime(total=1.0 + i, compute=0.5, encode_decode=0.1,
                         comm_exposed=0.4)


def _result(i):
    return TimingResult(model="m", scheme="s", world_size=8,
                        batch_size=32, sync_times=(0.1 + i, 0.2),
                        iteration_times=(0.3, 0.4 + i))


def _keys(n, prefix=0):
    return [f"{prefix:032x}{i:032x}" for i in range(n)]


class TestTierEquivalence:
    def test_hits_identical_across_all_tiers(self, tmp_path):
        """The same key must rehydrate byte-identically whether it is
        served hot, from a pack, or from a legacy file."""
        key = "a" * 64
        outcome = _result(3)

        legacy_dir = tmp_path / "legacy"
        legacy = SimulationCache(str(legacy_dir))
        legacy.put(key, outcome)
        from_legacy = SimulationCache(str(legacy_dir)).get(key)

        pack_dir = tmp_path / "pack"
        packed = SimulationCache(str(pack_dir))
        packed.store_many([(key, outcome)])
        packed.close()
        from_pack = SimulationCache(str(pack_dir)).get(key)

        hot = SimulationCache(str(tmp_path / "hot"), memory_mb=4)
        hot.store_many([(key, outcome)])
        from_memory = hot.get(key)
        assert hot.stats.memory_hits == 1

        assert from_legacy == outcome
        assert from_pack == outcome
        assert from_memory == outcome

    def test_oom_round_trips_through_packs(self, tmp_path):
        cache = SimulationCache(str(tmp_path))
        oom = OutOfMemoryError("boom", required_bytes=10, budget_bytes=5)
        cache.store_many([("b" * 64, oom)])
        hit = cache.get("b" * 64)
        assert isinstance(hit, OutOfMemoryError)
        assert hit.required_bytes == 10

    def test_memory_mb_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            SimulationCache(str(tmp_path), memory_mb=-1)


class TestBatchedIO:
    def test_lookup_many_mixes_tiers(self, tmp_path):
        cache = SimulationCache(str(tmp_path), memory_mb=4)
        keys = _keys(6)
        cache.store_many(
            [(k, _predicted(i)) for i, k in enumerate(keys[:2])])
        for i, key in enumerate(keys[2:4], start=2):
            cache.put(key, _predicted(i))
        found = cache.lookup_many(keys)
        assert set(found) == set(keys[:4])
        assert cache.stats.hits == 4
        assert cache.stats.misses == 2

    def test_lookup_many_counts_per_occurrence(self, tmp_path):
        cache = SimulationCache(str(tmp_path))
        key = "c" * 64
        cache.store_many([(key, _predicted(0))])
        cache.lookup_many([key, key, "d" * 64])
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1

    def test_lookup_many_writes_back_to_hot_tier(self, tmp_path):
        cache = SimulationCache(str(tmp_path), memory_mb=4)
        key = "e" * 64
        cache.store_many([(key, _predicted(1))])
        cache.memory.clear()  # simulate a restart's cold hot-tier
        cache.lookup_many([key])
        assert cache.stats.pack_hits == 1
        cache.lookup_many([key])
        assert cache.stats.memory_hits == 1

    def test_store_many_duplicate_keys_last_wins(self, tmp_path):
        cache = SimulationCache(str(tmp_path))
        key = "f" * 64
        cache.store_many([(key, _predicted(1)), (key, _predicted(2))])
        assert cache.get(key) == _predicted(2)

    def test_concurrent_batches_like_the_scheduler(self, tmp_path):
        """Hammer lookup_many/store_many from threads the way the
        serving scheduler's drain loop and HTTP workers do."""
        cache = SimulationCache(str(tmp_path), memory_mb=2, shards=4)
        errors = []
        per_thread = 40

        def worker(tid):
            try:
                keys = _keys(per_thread, prefix=tid)
                cache.store_many(
                    [(k, _predicted(i)) for i, k in enumerate(keys)])
                for _ in range(5):
                    found = cache.lookup_many(keys)
                    assert set(found) == set(keys)
                    for i, key in enumerate(keys):
                        assert found[key] == _predicted(i)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(tid,))
                   for tid in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats
        assert stats.stores == 6 * per_thread
        assert stats.hits == 6 * 5 * per_thread
        assert stats.misses == 0
        cache.close()
        # Everything the threads wrote is durable and healthy.
        reopened = SimulationCache(str(tmp_path))
        assert len(reopened) == 6 * per_thread
        assert reopened.verify()["corrupt"] == 0


class TestChaos:
    def test_killed_mid_flush_is_detected_not_served(self, tmp_path):
        """A pack segment torn by a mid-flush kill must read as misses,
        be reported by verify, and never rehydrate into an outcome."""
        cache = SimulationCache(str(tmp_path))
        keys = _keys(8)
        cache.store_many(
            [(k, _result(i)) for i, k in enumerate(keys)])
        cache.close()
        seg = tmp_path / segment_name(1)
        raw = seg.read_bytes()
        seg.write_bytes(raw[:int(len(raw) * 0.6)])  # the "kill"

        survivor = SimulationCache(str(tmp_path))
        report = survivor.verify()
        assert report["pack_truncated"] > 0
        assert report["corrupt"] > 0
        served = [k for k in keys if survivor.get(k) is not None]
        dropped = [k for k in keys if k not in served]
        assert dropped, "the torn tail must not be served"
        for key in served:  # survivors rehydrate cleanly
            assert isinstance(survivor.get(key), TimingResult)
        assert survivor.stats.quarantined == 0  # no quarantine churn
        assert not (tmp_path / "quarantine").exists()

    def test_killed_mid_index_append_keeps_prior_entries(self, tmp_path):
        cache = SimulationCache(str(tmp_path))
        cache.store_many([(k, _predicted(i))
                          for i, k in enumerate(_keys(3))])
        cache.close()
        with open(tmp_path / INDEX_FILENAME, "ab") as handle:
            handle.write(b'{"k":"torn')
        survivor = SimulationCache(str(tmp_path))
        assert len(survivor) == 3
        assert survivor.verify()["pack_truncated"] == 1

    def test_store_tempfile_cleaned_up_on_rename_failure(
            self, tmp_path, monkeypatch):
        """Regression: a failed atomic rename must not leak the
        temporary file into the cache directory."""
        cache = SimulationCache(str(tmp_path))

        def exploding_replace(src, dst):
            raise OSError("no rename for you")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            cache.put("a" * 64, _predicted(1))
        monkeypatch.undo()
        leftovers = [n for n in os.listdir(tmp_path)
                     if n.endswith(".tmp")]
        assert leftovers == []


class TestMaintenance:
    def _legacy_cache(self, tmp_path, n=5):
        cache = SimulationCache(str(tmp_path))
        for i, key in enumerate(_keys(n)):
            cache.put(key, _predicted(i))
        cache.close()
        return _keys(n)

    def test_compact_then_reserve_roundtrip(self, tmp_path):
        keys = self._legacy_cache(tmp_path)
        cache = SimulationCache(str(tmp_path))
        report = cache.compact()
        assert report["packed"] == len(keys)
        assert report["corrupt"] == 0
        assert cache.verify()["corrupt"] == 0
        cache.close()
        # No legacy files remain, yet every key still serves.
        assert not [n for n in os.listdir(tmp_path)
                    if n.endswith(".json") and len(n) == 69]
        reopened = SimulationCache(str(tmp_path))
        for i, key in enumerate(keys):
            assert reopened.get(key) == _predicted(i)

    def test_compact_leaves_corrupt_files_in_place(self, tmp_path):
        keys = self._legacy_cache(tmp_path, n=3)
        bad = keys[1]
        cache = SimulationCache(str(tmp_path))
        with open(cache.path_for(bad), "w", encoding="utf-8") as handle:
            handle.write("{ nope")
        report = cache.compact()
        assert report["packed"] == 2
        assert report["corrupt"] == 1
        assert os.path.exists(cache.path_for(bad))  # left for forensics
        assert cache.verify()["legacy_corrupt"] == 1

    def test_compact_drops_duplicates_without_repacking(self, tmp_path):
        cache = SimulationCache(str(tmp_path))
        key = "a" * 64
        cache.store_many([(key, _predicted(1))])  # already packed
        cache.put(key, _predicted(1))  # plus a legacy duplicate
        report = cache.compact()
        assert report["packed"] == 1
        assert not os.path.exists(cache.path_for(key))
        assert cache.get(key) == _predicted(1)

    def test_preload_warms_pack_index_and_memory(self, tmp_path):
        cache = SimulationCache(str(tmp_path), memory_mb=4)
        keys = _keys(4)
        cache.store_many(
            [(k, _predicted(i)) for i, k in enumerate(keys)])
        cache.put("b" * 64, _predicted(9))  # legacy-only entry
        cache.close()

        warm = SimulationCache(str(tmp_path), memory_mb=4)
        report = warm.preload(memory=True)
        assert report["entries"] == 5
        assert report["memory_entries"] == 5
        assert report["skipped"] == 0
        warm.lookup_many(keys + ["b" * 64])
        assert warm.stats.memory_hits == 5  # served without disk I/O

    def test_preload_without_memory_touches_packs_only(self, tmp_path):
        cache = SimulationCache(str(tmp_path))
        cache.store_many([("a" * 64, _predicted(1))])
        report = cache.preload()
        assert report == {"entries": 1, "memory_entries": 0,
                          "skipped": 0}

    def test_info_snapshot_shape(self, tmp_path):
        cache = SimulationCache(str(tmp_path), memory_mb=1)
        cache.store_many([("a" * 64, _predicted(1))])
        cache.put("b" * 64, _predicted(2))
        info = cache.info()
        assert info["legacy"]["entries"] == 1
        assert info["pack"]["entries"] == 1
        assert info["memory"]["entries"] == 2
        assert info["stats"]["stores"] == 2
        json.dumps(info)  # manifest-embeddable


class TestTierStats:
    def test_describe_unchanged_without_tier_traffic(self):
        assert CacheStats(hits=3, misses=1).describe() \
            == "3 hits / 1 misses (75% hit rate)"

    def test_describe_mentions_tiers_when_used(self):
        text = CacheStats(hits=5, misses=0, memory_hits=2,
                          pack_hits=2).describe()
        assert "[2 mem / 2 pack / 1 disk]" in text

    def test_since_tracks_tier_counters(self):
        stats = CacheStats(hits=4, memory_hits=1, pack_hits=2,
                           evictions=3)
        snap = stats.snapshot()
        stats.memory_hits += 2
        stats.evictions += 1
        delta = stats.since(snap)
        assert delta.memory_hits == 2
        assert delta.pack_hits == 0
        assert delta.evictions == 1

    def test_evictions_mirrored_into_stats(self, tmp_path):
        payload = outcome_to_payload(_predicted(0))
        nbytes = len(json.dumps(payload, separators=(",", ":")))
        cache = SimulationCache(str(tmp_path),
                                memory_mb=2 * nbytes / (1024 * 1024),
                                shards=1)
        keys = _keys(6)
        cache.store_many(
            [(k, _predicted(0)) for k in keys])
        assert cache.stats.evictions > 0
        assert cache.memory.evictions == cache.stats.evictions
