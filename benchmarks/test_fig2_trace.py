"""Figure 2: bucket all-reduces overlapping the backward pass."""

from repro.experiments import run_fig2


def test_fig2_overlap_trace(run_once, show):
    result = run_once(run_fig2)
    show(result)

    hidden = result.column("fully_hidden")
    durations = result.column("duration_ms")
    starts = result.column("start_ms")

    # Buckets launch while the backward pass is still running (the first
    # bucket starts long before the ~200ms iteration ends)...
    assert starts[0] < 100
    # ...most hide fully under computation, but the tail cannot (the
    # "it is only the last bucket for which the computation needs to
    # wait" caption).
    assert sum(hidden) >= len(hidden) - 2
    assert hidden[-1] is False
    # Buckets are serialized FIFO on the comm stream.
    ends = result.column("end_ms")
    for prev_end, next_start in zip(ends, starts[1:]):
        assert next_start >= prev_end - 1e-9
    # Overlap headline appears in the notes.
    assert any("hidden under compute" in note for note in result.notes)
    assert all(d > 0 for d in durations)
