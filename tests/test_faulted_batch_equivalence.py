"""Faulted batch path vs event path: bit-identity under every fault kind.

The companion to ``tests/test_batch_equivalence.py``: that module pins
the fault-free kernel, this one pins the masked kernels that serve
fault schedules.  The contract is the same — exact ``TimingResult``
equality (no ``approx``), same RNG stream consumption, same IEEE-754
operation order — now across stragglers, degraded/flapping links, NIC
faults, retransmit storms, and crashes with both recovery policies, on
every execution path (bucketed baseline, sequential compression,
overlapped compression) and every allreduce algorithm.  Plus the
cross-config dimension this PR adds: ``run_batch_many`` stacking
several runs into one kernel call, and the engine's automatic family
batching of cache-missing ``SimJob``s.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.collectives import (
    allgather_time,
    allgather_time_batch,
    ring_allreduce_time,
    ring_allreduce_time_batch,
)
from repro.compression import (
    FP16Scheme,
    PowerSGDScheme,
    SignSGDScheme,
    SyncSGDScheme,
    TopKScheme,
)
from repro.engine import ExperimentEngine, SimJob
from repro.errors import ConfigurationError
from repro.faults import (
    CrashFault,
    FaultSchedule,
    LinkFault,
    NodeFault,
    RetransmitFault,
    StragglerFault,
)
from repro.hardware import P3_2XLARGE, ClusterConfig, cluster_for_gpus
from repro.models import get_model
from repro.simulator import DDPConfig, DDPSimulator
from repro.simulator.batch import run_batch_many


@pytest.fixture(scope="module")
def rn50():
    return get_model("resnet50")


#: One schedule per fault kind, plus a kitchen sink that composes them.
SCHEDULES = {
    "straggler-windowed": FaultSchedule(
        seed=7,
        stragglers=[StragglerFault(worker=0, slowdown=2.0,
                                   start_iteration=3,
                                   duration_iterations=6)]),
    "link-flap": FaultSchedule(
        seed=7,
        links=[LinkFault(node_a=0, node_b=1, factor=0.3,
                         start_iteration=2, duration_iterations=3,
                         period_iterations=6)]),
    "nic-straggler": FaultSchedule(
        seed=7,
        nodes=[NodeFault(node=0, factor=0.25, start_iteration=1)]),
    "retransmit-storm": FaultSchedule(
        seed=7,
        retransmits=[RetransmitFault(drop_rate=0.3, timeout_s=1e-3,
                                     backoff=3.0, max_retries=4)]),
    "crash-restart": FaultSchedule(
        seed=7,
        crashes=[CrashFault(worker=1, at_iteration=4,
                            recovery="restart", stall_s=0.5)]),
    "crash-elastic": FaultSchedule(
        seed=7,
        crashes=[CrashFault(worker=1, at_iteration=4,
                            recovery="elastic")]),
    "kitchen-sink": FaultSchedule(
        seed=11,
        stragglers=[StragglerFault(worker=0, slowdown=1.7,
                                   start_iteration=0)],
        nodes=[NodeFault(node=0, factor=0.5, start_iteration=5)],
        retransmits=[RetransmitFault(drop_rate=0.2)],
        crashes=[CrashFault(worker=2, at_iteration=6,
                            recovery="elastic")]),
}

SCHEMES = {
    "syncsgd": SyncSGDScheme,
    "powersgd": lambda: PowerSGDScheme(rank=4),
    "topk": lambda: TopKScheme(fraction=0.01),
    "signsgd": SignSGDScheme,
    "fp16": FP16Scheme,
}


def make_sim(model, scheme, gpus=8, config=None, faults=None):
    return DDPSimulator(model, cluster_for_gpus(gpus), scheme=scheme,
                        config=config, faults=faults)


def run_both(model, scheme_fn, faults, gpus=8, config=None,
             iterations=14, warmup=3, seed=3):
    """One run per mode on separate simulators; returns both results
    and both simulators (for counter inspection)."""
    sim_e = make_sim(model, scheme_fn(), gpus, config, faults)
    sim_b = make_sim(model, scheme_fn(), gpus, config, faults)
    event = sim_e.run(iterations=iterations, warmup=warmup, seed=seed,
                      mode="event")
    batch = sim_b.run(iterations=iterations, warmup=warmup, seed=seed,
                      mode="batch")
    return event, batch, sim_e, sim_b


class TestFaultedBitIdentity:
    """Exact TimingResult equality, schedule x scheme x path."""

    @pytest.mark.parametrize("sched_name", sorted(SCHEDULES))
    @pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
    def test_every_schedule_and_scheme(self, rn50, sched_name,
                                       scheme_name):
        event, batch, sim_e, sim_b = run_both(
            rn50, SCHEMES[scheme_name], SCHEDULES[sched_name])
        assert event == batch
        assert (sim_e.injector.retransmits_injected,
                sim_e.injector.retransmit_delay_s) == \
            (sim_b.injector.retransmits_injected,
             sim_b.injector.retransmit_delay_s)

    @pytest.mark.parametrize("gpus", [8, 16, 32])
    def test_world_sizes(self, rn50, gpus):
        event, batch, _, _ = run_both(
            rn50, SCHEMES["powersgd"], SCHEDULES["kitchen-sink"],
            gpus=gpus)
        assert event == batch

    @pytest.mark.parametrize("algo", ["ring", "double_tree",
                                      "hierarchical",
                                      "parameter_server"])
    @pytest.mark.parametrize("scheme_name", ["syncsgd", "powersgd"])
    def test_every_allreduce_algorithm(self, rn50, algo, scheme_name):
        config = DDPConfig(allreduce_algorithm=algo)
        event, batch, _, _ = run_both(
            rn50, SCHEMES[scheme_name], SCHEDULES["nic-straggler"],
            config=config)
        assert event == batch

    @pytest.mark.parametrize("sched_name",
                             ["nic-straggler", "retransmit-storm",
                              "crash-elastic", "kitchen-sink"])
    def test_overlapped_compression_path(self, rn50, sched_name):
        config = DDPConfig(overlap_compression=True)
        event, batch, _, _ = run_both(
            rn50, SCHEMES["powersgd"], SCHEDULES[sched_name],
            config=config)
        assert event == batch

    def test_zero_jitter_faulted(self, rn50):
        config = DDPConfig(compute_jitter=0.0, comm_jitter=0.0)
        event, batch, _, _ = run_both(
            rn50, SCHEMES["powersgd"], SCHEDULES["kitchen-sink"],
            config=config)
        assert event == batch

    @pytest.mark.parametrize("overlap", [False, True])
    def test_elastic_crash_to_world_of_one(self, rn50, overlap):
        """The hardest presence case: the collective draw disappears
        mid-run when the second-to-last worker leaves."""
        cluster = ClusterConfig(P3_2XLARGE, num_nodes=2)
        faults = FaultSchedule(crashes=[
            CrashFault(worker=1, at_iteration=5, recovery="elastic")])
        config = DDPConfig(overlap_compression=overlap)
        sim_e = DDPSimulator(rn50, cluster, scheme=PowerSGDScheme(rank=4),
                             config=config, faults=faults)
        sim_b = DDPSimulator(rn50, cluster, scheme=PowerSGDScheme(rank=4),
                             config=config, faults=faults)
        assert sim_e.run(iterations=12, warmup=2, seed=9,
                         mode="event") == \
            sim_b.run(iterations=12, warmup=2, seed=9, mode="batch")

    def test_auto_resolves_to_batch_with_faults(self, rn50):
        sim = make_sim(rn50, SyncSGDScheme(), 8,
                       faults=SCHEDULES["nic-straggler"])
        sim.run(iterations=12, warmup=2, mode="auto")
        assert sim.last_run_mode == "batch"
        assert sim.last_run_fallback is None

    def test_retransmit_counters_match_event_exactly(self, rn50):
        event, batch, sim_e, sim_b = run_both(
            rn50, SCHEMES["syncsgd"], SCHEDULES["retransmit-storm"])
        assert event == batch
        assert sim_e.injector.retransmits_injected > 0
        assert sim_b.injector.retransmits_injected == \
            sim_e.injector.retransmits_injected
        # Bitwise, not approx: the batch path rebuilds the event
        # loop's sequential accumulation order.
        assert sim_b.injector.retransmit_delay_s == \
            sim_e.injector.retransmit_delay_s


class TestRunBatchMany:
    """The cross-config batch dimension: many runs, one kernel call."""

    def _sims(self, rn50, schedules, gpus=16):
        return [make_sim(rn50, PowerSGDScheme(rank=4), gpus,
                         faults=faults) for faults in schedules]

    def test_stacked_members_match_individual_event_runs(self, rn50):
        schedules = [None, SCHEDULES["nic-straggler"],
                     SCHEDULES["straggler-windowed"]]
        got = run_batch_many(self._sims(rn50, schedules),
                             iterations=14, warmup=3, seeds=(3, 3, 3))
        for faults, result in zip(schedules, got):
            ref = make_sim(rn50, PowerSGDScheme(rank=4), 16,
                           faults=faults).run(
                iterations=14, warmup=3, seed=3, mode="event")
            assert result == ref

    def test_member_seeds_are_independent(self, rn50):
        faults = SCHEDULES["nic-straggler"]
        got = run_batch_many(self._sims(rn50, [faults, faults]),
                             iterations=14, warmup=3, seeds=(3, 9))
        for seed, result in zip((3, 9), got):
            ref = make_sim(rn50, PowerSGDScheme(rank=4), 16,
                           faults=faults).run(
                iterations=14, warmup=3, seed=seed, mode="event")
            assert result == ref

    def test_mismatched_members_rejected(self, rn50):
        sims = [make_sim(rn50, PowerSGDScheme(rank=4), 16),
                make_sim(rn50, PowerSGDScheme(rank=4), 32)]
        with pytest.raises(ConfigurationError, match="share"):
            run_batch_many(sims, iterations=12, warmup=2, seeds=(0, 0))

    def test_seed_count_must_match(self, rn50):
        sims = [make_sim(rn50, PowerSGDScheme(rank=4), 16)]
        with pytest.raises(ConfigurationError, match="seeds"):
            run_batch_many(sims, iterations=12, warmup=2, seeds=(0, 1))

    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            run_batch_many([], iterations=12, warmup=2, seeds=())


class TestEngineFamilyBatching:
    """The engine stacks cache-missing jobs that differ only in faults
    and seed into one kernel call — outcomes must be unchanged."""

    def _jobs(self, rn50):
        jobs = []
        for faults in (None, SCHEDULES["nic-straggler"],
                       SCHEDULES["straggler-windowed"]):
            for gpus in (8, 16):
                jobs.append(SimJob(
                    model=rn50, cluster=cluster_for_gpus(gpus),
                    scheme=PowerSGDScheme(rank=4), iterations=14,
                    warmup=3, faults=faults))
        return jobs

    def test_family_key_ignores_faults_and_seed(self, rn50):
        base = SimJob(model=rn50, cluster=cluster_for_gpus(8),
                      scheme=PowerSGDScheme(rank=4))
        assert base.family_key() == replace(
            base, faults=SCHEDULES["nic-straggler"],
            seed=42).family_key()
        assert base.family_key() != replace(
            base, iterations=60).family_key()

    def test_outcomes_identical_to_unbatched_engine(self, rn50):
        batched = ExperimentEngine(chunking=True)
        reference = ExperimentEngine(chunking=False)
        got = [o.unwrap() for o in batched.run_outcomes(self._jobs(rn50))]
        ref = [o.unwrap()
               for o in reference.run_outcomes(self._jobs(rn50))]
        assert got == ref
        assert batched.jobs_batched == 6
        assert reference.jobs_batched == 0

    def test_pooled_families_identical(self, rn50):
        pooled = ExperimentEngine(jobs=2, chunking=True)
        reference = ExperimentEngine(chunking=False)
        got = [o.unwrap() for o in pooled.run_outcomes(self._jobs(rn50))]
        ref = [o.unwrap()
               for o in reference.run_outcomes(self._jobs(rn50))]
        assert got == ref
        assert pooled.jobs_batched == 6

    def test_explicit_event_jobs_never_batched(self, rn50):
        jobs = [replace(job, sim_mode="event")
                for job in self._jobs(rn50)]
        engine = ExperimentEngine(chunking=True)
        reference = ExperimentEngine(chunking=False)
        got = [o.unwrap() for o in engine.run_outcomes(jobs)]
        ref = [o.unwrap() for o in reference.run_outcomes(jobs)]
        assert got == ref
        assert engine.jobs_batched == 0

    def test_event_override_engine_never_batches(self, rn50):
        engine = ExperimentEngine(sim_mode="event", chunking=True)
        engine.run_outcomes(self._jobs(rn50))
        assert engine.jobs_batched == 0

    def test_stats_report_jobs_batched(self, rn50):
        engine = ExperimentEngine(chunking=True)
        engine.run_outcomes(self._jobs(rn50))
        stats = engine.stats()
        assert stats.jobs_batched == 6
        assert stats.to_dict()["jobs_batched"] == 6


class TestVectorizedFaultPrimitives:
    """Array bandwidth / incast overloads of the batch collectives."""

    def test_ring_batch_accepts_bandwidth_array(self):
        payloads = np.array([1.0, 25e6, 1e9])
        bws = np.array([10e9, 2.5e9, 10e9])
        batch = ring_allreduce_time_batch(payloads, 8, bws, 5e-6)
        scalar = [ring_allreduce_time(float(b), 8, float(bw), 5e-6)
                  for b, bw in zip(payloads, bws)]
        assert batch.tolist() == scalar

    def test_allgather_batch_accepts_arrays(self):
        payloads = np.array([4096.0, 3e7, 1e9])
        bws = np.array([25e9, 5e9, 25e9])
        incasts = np.array([1.0, 1.5, 2.0])
        batch = allgather_time_batch(payloads, 16, bws, 2e-6,
                                     incast_factor=incasts)
        scalar = [allgather_time(float(b), 16, float(bw), 2e-6,
                                 incast_factor=float(ic))
                  for b, bw, ic in zip(payloads, bws, incasts)]
        assert batch.tolist() == scalar

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            ring_allreduce_time_batch(np.array([1e6]), 8,
                                      np.array([0.0]), 5e-6)

    def test_incast_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            allgather_time_batch(np.array([1e6]), 8, 10e9, 2e-6,
                                 incast_factor=np.array([0.5]))
