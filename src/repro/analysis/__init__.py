"""Post-hoc analyses: blocked-time bottlenecks, model sensitivity, and
the auto-advisor's sharded Pareto sweep."""

from .advisor import (
    AdvisorReport,
    FrontierPoint,
    SweepPlan,
    SweepSpec,
    advise,
    candidate_grid,
    compression_error,
    finish_sweep,
    merge_frontiers,
    pareto_mask,
    plan_sweep,
)
from .bottleneck import (
    BlockedTimeReport,
    TimeBreakdown,
    blocked_time_analysis,
    time_breakdown,
)
from .sensitivity import DEFAULT_EPSILON, Sensitivities, model_sensitivities

__all__ = [
    "TimeBreakdown", "time_breakdown",
    "BlockedTimeReport", "blocked_time_analysis",
    "Sensitivities", "model_sensitivities", "DEFAULT_EPSILON",
    "AdvisorReport", "FrontierPoint", "SweepPlan", "SweepSpec",
    "advise", "plan_sweep", "finish_sweep",
    "candidate_grid", "compression_error", "merge_frontiers",
    "pareto_mask",
]
