"""Perfetto/Chrome export: multi-stream, multi-iteration, multi-worker."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hardware import cluster_for_gpus
from repro.models import get_model
from repro.simulator import (
    DDPConfig,
    DDPSimulator,
    allocate_track_ids,
    run_to_events,
    traces_to_events,
    write_run_trace,
)
from repro.simulator.export import WIRE_BYTES_COUNTER
from repro.simulator.trace import (
    COMM_STREAM,
    COMPUTE_STREAM,
    IterationTrace,
    Span,
)


@pytest.fixture(scope="module")
def sim():
    return DDPSimulator(get_model("resnet50"), cluster_for_gpus(8),
                        config=DDPConfig(compute_jitter=0.0,
                                         comm_jitter=0.0))


@pytest.fixture(scope="module")
def traces(sim):
    rng = np.random.default_rng(0)
    return [sim.simulate_iteration(64, rng) for _ in range(3)]


@pytest.fixture(scope="module")
def worker_traces(sim):
    return {
        f"worker{w}": [sim.simulate_iteration(
            64, np.random.default_rng(w)) for _ in range(2)]
        for w in range(2)
    }


class TestTrackAllocation:
    def test_compute_and_comm_keep_historical_ids(self):
        ids = allocate_track_ids([COMM_STREAM, COMPUTE_STREAM])
        assert ids == {COMPUTE_STREAM: 1, COMM_STREAM: 2}

    def test_unknown_streams_get_next_free_ids(self):
        ids = allocate_track_ids([COMPUTE_STREAM, "encode", COMM_STREAM,
                                  "decode"])
        assert ids[COMPUTE_STREAM] == 1 and ids[COMM_STREAM] == 2
        assert ids["encode"] == 3 and ids["decode"] == 4

    def test_custom_streams_only(self):
        # The reserved ids stay reserved even when unused, so layout is
        # stable if compute/comm appear in a later export.
        assert allocate_track_ids(["a", "b"]) == {"a": 3, "b": 4}

    def test_ids_are_unique(self):
        ids = allocate_track_ids(["x", COMPUTE_STREAM, "y", COMM_STREAM])
        assert len(set(ids.values())) == len(ids)


class TestMultiIterationExport:
    def test_metadata_events_present(self, traces):
        events = traces_to_events(traces, process_name="rank0")
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert {"rank0", COMPUTE_STREAM, COMM_STREAM} <= names

    def test_durations_non_negative_and_finite(self, traces):
        events = traces_to_events(traces)
        complete = [e for e in events if e["ph"] == "X"]
        assert complete
        for e in complete:
            assert e["ts"] >= 0.0
            assert e["dur"] >= 0.0
            assert np.isfinite(e["ts"]) and np.isfinite(e["dur"])

    def test_iterations_laid_end_to_end(self, traces):
        events = traces_to_events(traces)
        complete = [e for e in events if e["ph"] == "X"]
        # One iteration's worth of spans per trace, consecutive
        # iterations shifted strictly later.
        assert len(complete) == sum(len(t.spans) for t in traces)
        span_end = max(traces[0].iteration_end,
                       max(s.end for s in traces[0].spans))
        second = complete[len(traces[0].spans):]
        assert min(e["ts"] for e in second) >= span_end * 1e6 - 1e-6

    def test_iteration_boundary_instants(self, traces):
        events = traces_to_events(traces)
        instants = [e for e in events if e["ph"] == "i"]
        assert [e["name"] for e in instants] \
            == [f"iteration{i}" for i in range(len(traces))]
        ts = [e["ts"] for e in instants]
        assert ts == sorted(ts) and ts[0] == 0.0

    def test_single_iteration_has_no_instants(self, traces):
        events = traces_to_events(traces[:1])
        assert not [e for e in events if e["ph"] == "i"]

    def test_counter_track_shape(self, traces):
        events = traces_to_events(traces)
        counters = [e for e in events if e["ph"] == "C"]
        assert len(counters) > 1
        assert {e["name"] for e in counters} == {WIRE_BYTES_COUNTER}
        # One dedicated track, cumulative and non-decreasing in time.
        assert len({e["tid"] for e in counters}) == 1
        points = sorted(counters, key=lambda e: e["ts"])
        values = [e["args"]["bytes"] for e in points]
        assert values[0] == 0.0
        assert values == sorted(values)
        assert values[-1] == pytest.approx(
            sum(t.wire_bytes_total() for t in traces))

    def test_counters_can_be_disabled(self, traces):
        events = traces_to_events(traces, include_counters=False)
        assert not [e for e in events if e["ph"] == "C"]

    def test_custom_stream_exports(self):
        trace = IterationTrace(iteration_end=2.0)
        trace.add(Span(COMPUTE_STREAM, "fwd", 0.0, 1.0))
        trace.add(Span("encode", "enc0", 1.0, 1.5))
        events = traces_to_events([trace])
        enc = next(e for e in events if e.get("name") == "enc0")
        meta_tids = {e["args"]["name"]: e["tid"]
                     for e in events if e["name"] == "thread_name"}
        assert enc["tid"] == meta_tids["encode"] != meta_tids[COMPUTE_STREAM]
        assert enc["cat"] == "encode"

    def test_empty_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            traces_to_events([])
        with pytest.raises(ConfigurationError):
            traces_to_events([IterationTrace()])
        with pytest.raises(ConfigurationError):
            run_to_events({})


class TestMultiWorkerExport:
    def test_one_pid_per_worker(self, worker_traces):
        events = run_to_events(worker_traces)
        process_meta = {e["pid"]: e["args"]["name"] for e in events
                        if e["ph"] == "M" and e["name"] == "process_name"}
        assert process_meta == {0: "worker0", 1: "worker1"}

    def test_tracks_separated_by_worker(self, worker_traces):
        events = run_to_events(worker_traces)
        for pid in (0, 1):
            spans = [e for e in events
                     if e["ph"] == "X" and e["pid"] == pid]
            assert len(spans) == sum(
                len(t.spans)
                for t in worker_traces[f"worker{pid}"])

    def test_counters_per_worker(self, worker_traces):
        events = run_to_events(worker_traces)
        assert {e["pid"] for e in events if e["ph"] == "C"} == {0, 1}

    def test_write_run_trace_roundtrip(self, worker_traces, tmp_path):
        path = tmp_path / "run.json"
        write_run_trace(worker_traces, str(path))
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert {e["ph"] for e in events} == {"X", "M", "i", "C"}
        # Survives JSON: every event has a name and numeric timestamps.
        for e in events:
            if "ts" in e:
                assert isinstance(e["ts"], (int, float))
