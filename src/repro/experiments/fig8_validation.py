"""Figure 8: validating the performance model against measurements.

The paper compares model predictions to real cluster measurements and
reports median relative errors of 1.8 % (syncSGD), 1.37 % (PowerSGD) and
14.2 % (signSGD) — the signSGD gap attributed to all-gather incast, which
the model does not capture.  Here "measured" is the discrete-event
simulator (which *does* model incast and jitter) and the prediction is
the calibrated analytic model, so the same error structure emerges for
the same reason.  The benchmark asserts the error ordering:
signSGD error >> syncSGD/PowerSGD errors, with the all-reducible schemes
under a few percent.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..compression.schemes import (
    PowerSGDScheme,
    Scheme,
    SignSGDScheme,
    SyncSGDScheme,
)
from ..core import validate_scheme
from ..models import get_model
from .runner import PAPER_GPU_SWEEP, ExperimentResult, scaling_clusters

#: The three schemes Figure 8 validates.
FIG8_SCHEMES: Tuple[Scheme, ...] = (
    SyncSGDScheme(),
    PowerSGDScheme(rank=4),
    SignSGDScheme(),
)

#: (model, batch) pairs to validate on.
FIG8_WORKLOADS: Tuple[Tuple[str, int], ...] = (
    ("resnet50", 64),
    ("resnet101", 64),
    ("bert-base", 12),
)


def run_fig8(gpu_counts: Sequence[int] = PAPER_GPU_SWEEP,
             workloads: Sequence[Tuple[str, int]] = FIG8_WORKLOADS,
             iterations: int = 40, warmup: int = 5,
             seed: int = 0) -> ExperimentResult:
    """Model-vs-simulator validation across the scaling sweep."""
    clusters = scaling_clusters(gpu_counts)
    rows: List[Dict[str, Any]] = []
    for model_name, batch_size in workloads:
        model = get_model(model_name)
        for scheme in FIG8_SCHEMES:
            curve = validate_scheme(
                model, scheme, clusters, batch_size=batch_size,
                iterations=iterations, warmup=warmup, seed=seed)
            for point in curve.points:
                rows.append({
                    "model": model_name,
                    "scheme": curve.scheme,
                    "gpus": point.world_size,
                    "measured_ms": point.measured_s * 1e3,
                    "predicted_ms": point.predicted_s * 1e3,
                    "rel_error": point.relative_error,
                })
    return ExperimentResult(
        experiment_id="fig8",
        title="Performance model vs measured (simulated) iteration time",
        columns=("model", "scheme", "gpus", "measured_ms", "predicted_ms",
                 "rel_error"),
        rows=tuple(rows),
    )


def median_errors(result: ExperimentResult) -> Dict[str, float]:
    """Median relative error per scheme (the paper's summary numbers)."""
    import numpy as np

    by_scheme: Dict[str, List[float]] = {}
    for row in result.rows:
        by_scheme.setdefault(row["scheme"], []).append(row["rel_error"])
    return {scheme: float(np.median(errors))
            for scheme, errors in by_scheme.items()}
