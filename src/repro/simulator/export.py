"""Export simulated traces to the Chrome trace-event format.

``chrome://tracing`` (or Perfetto) renders the JSON produced here as the
same two-lane timeline Nsight shows for real runs — compute stream on
one track, communication on the other — which makes simulated iterations
directly comparable with the paper's Figure 2.

Format reference: the Trace Event Format's "complete" (``ph: "X"``)
events with microsecond timestamps.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from ..errors import ConfigurationError
from .trace import COMM_STREAM, COMPUTE_STREAM, IterationTrace

#: Track ids (thread ids in the trace-event model).
_TRACK_IDS = {COMPUTE_STREAM: 1, COMM_STREAM: 2}

#: Category per stream, for Perfetto filtering/coloring.
_CATEGORIES = {COMPUTE_STREAM: "compute", COMM_STREAM: "network"}


def trace_to_events(trace: IterationTrace,
                    process_name: str = "worker0") -> List[Dict[str, Any]]:
    """Convert a trace to a list of trace-event dicts."""
    if not trace.spans:
        raise ConfigurationError("trace has no spans to export")
    events: List[Dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": 0,
         "args": {"name": process_name}},
    ]
    for stream, tid in _TRACK_IDS.items():
        events.append({"name": "thread_name", "ph": "M", "pid": 0,
                       "tid": tid, "args": {"name": stream}})
    for span in sorted(trace.spans, key=lambda s: s.start):
        tid = _TRACK_IDS.get(span.stream)
        if tid is None:
            raise ConfigurationError(
                f"span on unknown stream {span.stream!r}")
        events.append({
            "name": span.label,
            "cat": _CATEGORIES[span.stream],
            "ph": "X",
            "pid": 0,
            "tid": tid,
            "ts": span.start * 1e6,       # microseconds
            "dur": span.duration * 1e6,
        })
    return events


def trace_to_chrome_json(trace: IterationTrace,
                         process_name: str = "worker0") -> str:
    """Serialize a trace as a chrome://tracing-loadable JSON string."""
    return json.dumps({
        "traceEvents": trace_to_events(trace, process_name),
        "displayTimeUnit": "ms",
    }, indent=1)


def write_chrome_trace(trace: IterationTrace, path: str,
                       process_name: str = "worker0") -> None:
    """Write the trace JSON to ``path``."""
    payload = trace_to_chrome_json(trace, process_name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)
