"""Command-line interface: ``python -m repro <command>``.

Eight subcommands mirror the library's main workflows:

* ``experiment`` — regenerate a paper exhibit (table1..fig13, or
  ``all``); with ``--cache`` a ``manifest.json`` provenance record is
  written beside the cache (plus a ``metrics.prom`` Prometheus
  snapshot); ``--trace-run out.json`` records a span trace of the whole
  run — CLI, exhibits, engine queue/exec/cache per worker process, and
  simulator streams — as one Perfetto-loadable file;
* ``recommend`` — §7 advisor: which scheme (if any) for a model on a
  cluster;
* ``advise`` — the auto-advisor: sweep the full scheme ×
  hyperparameter × world-size × bandwidth grid (over a million configs
  by default) in bounded engine shards, reduce to the Pareto frontier
  of iteration time vs compression error, and refine survivors with
  exact break-even bandwidths plus a ranked recommendation;
* ``whatif`` — bandwidth / compute sweeps for one scheme;
* ``simulate`` — one simulated configuration with a timeline trace;
  ``--trace out.json`` exports a Perfetto-loadable multi-worker trace
  (reconstructed from the batch kernel on the fast path, identical to
  the event loop's), ``--faults spec.json`` injects a
  :class:`repro.faults.FaultSchedule`;
* ``metrics`` — re-render a written manifest's metrics snapshot as
  text or Prometheus exposition format;
* ``serve`` — run the persistent HTTP service (``POST /v1/whatif``,
  ``POST /v1/simulate``, ``GET /v1/jobs/<id>``, ``GET /metrics``,
  ``GET /healthz``; see docs/serving.md) on a continuous-batching
  scheduler that shares one engine and cache across requests;
  ``--cache-mem-mb`` adds an in-process hot tier in front of the disk
  cache and ``--cache-preload`` warm-starts from the pack index;
* ``cache`` — offline maintenance for a cache directory: ``stats``
  (tier sizes), ``compact`` (pack legacy per-key files into append-only
  segments), ``verify`` (detect corruption; exit 1 if any).

Everything prints plain text; use ``--markdown`` on ``experiment`` for
paste-ready tables.  Global flags: ``--version``, ``--log-level``/
``--log-json`` (structured stderr logging), ``--no-telemetry`` (skip
the metrics registry the CLI otherwise enables).
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import time
from typing import List, Optional

from . import __version__
from .compression import scheme_from_spec
from .core import (
    PerfModelInputs,
    bandwidth_sweep,
    compute_sweep,
    find_crossover_gbps,
    recommend,
)
from .engine import ExperimentEngine, SimulationCache
from .errors import ReproError
from .experiments import EXPERIMENTS, EXTRA_EXPERIMENTS
from .faults import FaultSchedule
from .hardware import cluster_for_gpus
from .models import available_models, get_model
from .reporting import render_metrics, to_markdown
from .simulator import (
    FALLBACK_REASONS,
    SIM_MODES,
    DDPConfig,
    DDPSimulator,
    reconstruct_traces,
    write_run_trace,
    write_trace_spans,
)
from .telemetry import (
    MANIFEST_FILENAME,
    build_manifest,
    disable_tracing,
    enable_tracing,
    get_logger,
    get_tracer,
    render_prometheus,
    write_manifest,
)
from .telemetry import logs as telemetry_logs
from .telemetry import metrics as telemetry_metrics

#: Prometheus snapshot written beside the manifest.
PROM_FILENAME = "metrics.prom"
from .units import gbps_to_bytes_per_s


def _add_model_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", default="resnet50",
                        choices=available_models())
    parser.add_argument("--batch", type=int, default=None,
                        help="per-GPU batch size (default: model's)")
    parser.add_argument("--gpus", type=int, default=32,
                        help="total GPUs (multiple of 4)")


def _parse_scheme(spec: str):
    """Parse 'name' or 'name:key=value,key=value' into a Scheme."""
    return scheme_from_spec(spec)


def _accepts_engine(runner) -> bool:
    """Whether an experiment runner takes the sweep engine.

    Trace- and analytic-model-based exhibits (fig2, fig8, ...) have no
    simulation grid to fan out; they simply don't declare the parameter.
    """
    try:
        return "engine" in inspect.signature(runner).parameters
    except (TypeError, ValueError):
        return False


def cmd_experiment(args: argparse.Namespace) -> int:
    cache = (SimulationCache(args.cache, memory_mb=args.cache_mem_mb)
             if args.cache else None)
    engine = ExperimentEngine(jobs=args.jobs, cache=cache,
                              sim_mode=args.sim_mode,
                              chunking=not args.no_chunking)
    # "all" covers only the paper's own exhibits; extras (reliability)
    # run by explicit id so the canonical output stays stable.
    ids = list(EXPERIMENTS) if args.id == "all" else [args.id]
    runners = {**EXPERIMENTS, **EXTRA_EXPERIMENTS}
    run_started = time.perf_counter()
    if args.trace_run:
        enable_tracing()
    try:
        exhibits = {}
        tracer = get_tracer()
        with tracer.span(f"experiment {args.id}", track="cli",
                         exhibits=str(len(ids))):
            for exp_id in ids:
                runner = runners[exp_id]
                before = engine.cache_stats.snapshot()
                started = time.perf_counter()
                with tracer.span(f"exhibit {exp_id}", track="cli",
                                 exhibit=exp_id):
                    if _accepts_engine(runner):
                        result = runner(engine=engine)
                    else:
                        result = runner()
                elapsed = time.perf_counter() - started
                if args.markdown:
                    print(to_markdown(result, "{:.2f}"))
                else:
                    print(result.render_table("{:.2f}"))
                status = f"[{exp_id}] {elapsed:.1f} s"
                if cache is not None:
                    status += ", cache: " + engine.cache_stats.since(
                        before).describe()
                print(status)
                print()
                exhibits[exp_id] = {
                    "rows": len(result.rows),
                    "digest": result.content_digest(),
                    "wall_s": round(elapsed, 3),
                }
        trace_info = None
        if args.trace_run:
            spans = tracer.drain()
            n_bytes = write_trace_spans(args.trace_run, spans)
            trace_mode = ("event" if args.sim_mode == "event"
                          else "reconstructed-batch")
            registry = telemetry_metrics.get_registry()
            registry.counter("trace_spans_total",
                             mode=trace_mode).inc(len(spans))
            registry.counter("trace_export_bytes_total").inc(n_bytes)
            trace_info = {"mode": trace_mode,
                          "spans_total": len(spans),
                          "export_bytes_total": n_bytes,
                          "path": args.trace_run}
            print(f"wrote run trace ({len(spans)} spans) "
                  f"to {args.trace_run}")
    finally:
        if args.trace_run:
            disable_tracing()
    manifest_path = args.manifest
    if manifest_path is None and args.cache:
        manifest_path = os.path.join(args.cache, MANIFEST_FILENAME)
    if manifest_path:
        snapshot = telemetry_metrics.get_registry().snapshot()
        manifest = build_manifest(
            command=f"experiment {args.id}",
            config={"command": "experiment", "id": args.id,
                    "jobs": args.jobs, "cache": args.cache,
                    "cache_mem_mb": args.cache_mem_mb,
                    "markdown": bool(args.markdown),
                    "sim_mode": args.sim_mode,
                    "chunking": not args.no_chunking},
            wall_time_s=time.perf_counter() - run_started,
            metrics=snapshot,
            results={"exhibits": exhibits,
                     "engine": engine.stats().to_dict(),
                     **({"cache": cache.info()}
                        if cache is not None else {})},
            trace=trace_info,
        )
        write_manifest(manifest_path, manifest)
        prom_path = os.path.join(
            os.path.dirname(manifest_path) or ".", PROM_FILENAME)
        with open(prom_path, "w", encoding="utf-8") as handle:
            handle.write(render_prometheus(snapshot))
        get_logger("repro.cli").info("wrote manifest",
                                     path=manifest_path,
                                     prom=prom_path)
    if args.metrics:
        print(render_metrics(telemetry_metrics.get_registry().snapshot()))
    return 0


def cmd_recommend(args: argparse.Namespace) -> int:
    model = get_model(args.model)
    cluster = cluster_for_gpus(args.gpus)
    if args.bandwidth is not None:
        cluster = cluster.with_instance(
            cluster.instance.with_network_gbps(args.bandwidth))
    rec = recommend(model, cluster, batch_size=args.batch)
    print(rec.render())
    return 0


def cmd_advise(args: argparse.Namespace) -> int:
    """Run the auto-advisor's sharded Pareto sweep and print the report.

    Output contains no timings or worker counts, so it is
    byte-identical for any ``--jobs`` value — the determinism smoke
    gates diff it directly.
    """
    from .analysis import SweepSpec, advise

    model = get_model(args.model)
    cluster = cluster_for_gpus(args.gpus)
    if args.bandwidth is not None:
        cluster = cluster.with_instance(
            cluster.instance.with_network_gbps(args.bandwidth))
    spec = SweepSpec(world_sizes=tuple(args.world_sizes),
                     min_bandwidth_gbps=args.min_bandwidth,
                     max_bandwidth_gbps=args.max_bandwidth,
                     bandwidth_points=args.bandwidth_points,
                     shard_points=args.shard_points)
    cache = (SimulationCache(args.cache, memory_mb=args.cache_mem_mb)
             if args.cache else None)
    engine = ExperimentEngine(jobs=args.jobs, cache=cache)
    report = advise(model, cluster, batch_size=args.batch, spec=spec,
                    engine=engine)
    print(report.render(top=args.top))
    return 0


def cmd_whatif(args: argparse.Namespace) -> int:
    model = get_model(args.model)
    scheme = _parse_scheme(args.scheme)
    inputs = PerfModelInputs(
        world_size=args.gpus,
        bandwidth_bytes_per_s=gbps_to_bytes_per_s(args.bandwidth or 10.0),
        batch_size=args.batch)
    print(f"{model.name} x {scheme.label} at {args.gpus} GPUs\n")
    bws = [1, 2, 3, 5, 7, 9, 11, 13, 15, 20, 25, 30]
    points = bandwidth_sweep(model, scheme, bws, inputs)
    print("bandwidth sweep (Gbit/s -> speedup):")
    for p in points:
        print(f"  {p.x:5.1f}  sync {p.syncsgd_s * 1e3:7.1f} ms | "
              f"{scheme.name} {p.compressed_s * 1e3:7.1f} ms | "
              f"{p.speedup:+.1%}")
    crossover = find_crossover_gbps(points)
    print(f"  crossover: "
          + (f"{crossover:.1f} Gbit/s" if crossover else "none in sweep"))
    print("\ncompute sweep at "
          f"{args.bandwidth or 10.0:g} Gbit/s (x V100 speed -> speedup):")
    for p in compute_sweep(model, scheme, [1, 2, 3, 4], inputs):
        print(f"  {p.x:4.1f}x  sync {p.syncsgd_s * 1e3:7.1f} ms | "
              f"{scheme.name} {p.compressed_s * 1e3:7.1f} ms | "
              f"{p.speedup:+.1%}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    import numpy as np

    model = get_model(args.model)
    cluster = cluster_for_gpus(args.gpus)
    scheme = _parse_scheme(args.scheme) if args.scheme else None
    faults = FaultSchedule.load(args.faults) if args.faults else None
    sim = DDPSimulator(model, cluster, scheme=scheme, faults=faults)
    # Resolve the mode up front so an explicit mode that cannot be
    # honoured errors out instead of silently degrading.  --trace no
    # longer forces the event path: on the batch path span timelines
    # are reconstructed from the kernel's intermediates
    # (repro.simulator.reconstruct), bit-identical to the event loop's.
    mode, fallback = sim.resolve_mode(args.sim_mode,
                                      tracing=bool(args.trace))
    result = sim.run(args.batch, iterations=args.iterations, warmup=10,
                     mode=mode)
    label = scheme.label if scheme else "syncsgd"
    print(f"{model.name} x {label} on {cluster.describe()}, "
          f"batch {result.batch_size}:")
    print(f"  sync time {result.mean * 1e3:.1f} ms "
          f"(± {result.std * 1e3:.1f}) over "
          f"{len(result.sync_times)} iterations")
    if fallback is not None:
        print(f"  sim mode: {sim.last_run_mode} (auto fell back: "
              f"{FALLBACK_REASONS[fallback]})")
    else:
        print(f"  sim mode: {sim.last_run_mode}")
    if sim.injector is not None:
        print(f"  {sim.injector.summary()}")
    quiet = DDPConfig(compute_jitter=0.0, comm_jitter=0.0)
    trace = DDPSimulator(model, cluster, scheme=scheme, config=quiet,
                         faults=faults).simulate_iteration(
        args.batch, np.random.default_rng(0))
    print(trace.render_ascii())
    if args.trace:
        # Each simulated worker draws its own jitter, so the exported
        # timeline shows the per-rank variance a real Nsight session
        # would; iterations are laid end-to-end per worker.  On the
        # batch path the spans come from kernel reconstruction — the
        # exported file is byte-identical to the event loop's (seed w
        # replays the same RNG draws either way).
        workers = args.trace_workers
        iterations = args.trace_iterations
        if sim.last_run_mode == "batch":
            worker_traces = {
                f"worker{w}": reconstruct_traces(
                    sim, args.batch, iterations=iterations, seed=w)
                for w in range(workers)
            }
        else:
            worker_traces = {
                f"worker{w}": [
                    t for t in _iterate(sim, args.batch,
                                        np.random.default_rng(w),
                                        iterations)]
                for w in range(workers)
            }
        n_bytes = write_run_trace(worker_traces, args.trace)
        telemetry_metrics.get_registry().counter(
            "trace_export_bytes_total").inc(n_bytes)
        print(f"  wrote Perfetto trace ({workers} worker(s) x "
              f"{iterations} iteration(s)) to {args.trace}")
    if args.metrics:
        print(render_metrics(telemetry_metrics.get_registry().snapshot()))
    return 0


def _iterate(sim: DDPSimulator, batch: Optional[int], rng,
             iterations: int):
    for i in range(iterations):
        yield sim.simulate_iteration(batch, rng, iteration=i)


def cmd_metrics(args: argparse.Namespace) -> int:
    """Re-render a written manifest's metrics snapshot."""
    manifest_path = args.manifest
    if manifest_path is None and args.cache:
        manifest_path = os.path.join(args.cache, MANIFEST_FILENAME)
    if manifest_path is None:
        raise ReproError("metrics needs --manifest PATH or --cache DIR")
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ReproError(
            f"cannot read manifest {manifest_path!r}: {exc}")
    snapshot = manifest.get("metrics")
    if not isinstance(snapshot, dict):
        raise ReproError(
            f"manifest {manifest_path!r} has no metrics snapshot")
    if args.format == "prom":
        print(render_prometheus(snapshot), end="")
    else:
        print(render_metrics(snapshot))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the persistent what-if/simulation service until interrupted."""
    from .serving import ServingScheduler, make_server

    cache = (SimulationCache(args.cache, memory_mb=args.cache_mem_mb)
             if args.cache else None)
    if cache is not None and args.cache_preload:
        loaded = cache.preload(memory=args.cache_mem_mb > 0)
        print(f"cache preload: {loaded['entries']} pack entries indexed, "
              f"{loaded['memory_entries']} loaded into memory "
              f"({loaded['skipped']} skipped)", flush=True)
    engine = ExperimentEngine(jobs=args.jobs, cache=cache)
    scheduler = ServingScheduler(
        engine=engine,
        queue_depth=args.queue_depth,
        quota_rps=args.quota_rps,
        quota_burst=args.quota_burst,
        batch_window_s=args.batch_window_ms / 1e3,
        max_batch_requests=args.max_batch_requests,
        default_timeout_s=args.request_timeout_s)
    server = make_server(scheduler, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    # Parsed by scripts (the smoke gates, examples) to find an
    # ephemeral port, so keep the "listening on" phrasing stable.
    print(f"repro serve listening on http://{host}:{port}", flush=True)
    get_logger("repro.cli").info("serve started", host=host, port=port,
                                 jobs=args.jobs, cache=args.cache or "")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        scheduler.close()
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Offline cache maintenance: ``stats``, ``compact``, ``verify``."""
    if not os.path.isdir(args.cache):
        raise ReproError(f"cache directory {args.cache!r} does not exist")
    cache = SimulationCache(args.cache)
    try:
        if args.action == "stats":
            info = cache.info()
            print(f"cache {args.cache}")
            print(f"  legacy: {info['legacy']['entries']} entries, "
                  f"{info['legacy']['bytes']} bytes")
            print(f"  pack:   {info['pack']['entries']} entries in "
                  f"{info['pack']['segments']} segment(s), "
                  f"{info['pack']['bytes']} bytes, "
                  f"{info['pack']['truncated']} truncated")
            print(f"  total:  {len(cache)} distinct keys")
        elif args.action == "compact":
            report = cache.compact()
            print(f"compacted {report['packed']} legacy entries into "
                  f"{report['segments']} segment(s); "
                  f"{report['corrupt']} corrupt left in place")
        elif args.action == "verify":
            report = cache.verify()
            print(f"verify {args.cache}")
            print(f"  legacy: {report['legacy_ok']} ok, "
                  f"{report['legacy_corrupt']} corrupt")
            print(f"  pack:   {report['pack_ok']} ok, "
                  f"{report['pack_corrupt']} corrupt, "
                  f"{report['pack_truncated']} truncated")
            if report["corrupt"]:
                print(f"  FAILED: {report['corrupt']} corrupt entries")
                return 1
            print(f"  OK: {report['entries']} entries healthy")
    finally:
        cache.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Gradient-compression utility study "
                     "(MLSys 2022 reproduction)"))
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    parser.add_argument("--log-level", default="warning",
                        choices=sorted(telemetry_logs.LEVELS),
                        help="minimum stderr log severity "
                             "(default: warning)")
    parser.add_argument("--log-json", action="store_true",
                        help="emit logs as JSONL instead of text")
    parser.add_argument("--no-telemetry", action="store_true",
                        help="keep the null metrics backend instead of "
                             "enabling the in-process registry")
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiment",
                           help="regenerate a paper table/figure")
    p_exp.add_argument("id",
                       choices=[*EXPERIMENTS, *EXTRA_EXPERIMENTS, "all"])
    p_exp.add_argument("--markdown", action="store_true")
    p_exp.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for simulation sweeps "
                            "(default: 1, serial)")
    p_exp.add_argument("--cache", default=None, metavar="DIR",
                       help="directory for the content-addressed "
                            "simulation result cache (default: off)")
    p_exp.add_argument("--cache-mem-mb", type=float, default=0.0,
                       metavar="MB",
                       help="in-process hot tier for the cache: keep up "
                            "to MB megabytes of recently-touched "
                            "entries in memory in front of the disk "
                            "tiers (default: 0, disabled; hits are "
                            "byte-identical either way)")
    p_exp.add_argument("--manifest", default=None, metavar="PATH",
                       help="write a run manifest here (default: "
                            "<cache>/manifest.json when --cache is set)")
    p_exp.add_argument("--metrics", action="store_true",
                       help="print the telemetry snapshot at the end")
    p_exp.add_argument("--sim-mode", default="auto", choices=SIM_MODES,
                       help="simulation execution scheme (default: auto "
                            "— the vectorized fast path whenever "
                            "results are provably identical). "
                            "Independent of chunking: with --jobs N the "
                            "engine groups compatible jobs (model-eval "
                            "families into single grid calls, pooled "
                            "simulations into chunks); per-point cache "
                            "keys and cached bytes are unchanged, so "
                            "--cache directories are shared freely "
                            "across modes, job counts, and chunking "
                            "settings")
    p_exp.add_argument("--no-chunking", action="store_true",
                       help="disable job chunking/family grouping and "
                            "run one execution per job (identical rows "
                            "and cache entries, only slower)")
    p_exp.add_argument("--trace-run", default=None, metavar="PATH",
                       help="record a span trace of the whole run — "
                            "CLI, exhibits, engine queue/exec/cache "
                            "per worker process, simulator streams — "
                            "and write it here as one Perfetto-loadable "
                            "JSON file")
    p_exp.set_defaults(fn=cmd_experiment)

    p_rec = sub.add_parser("recommend",
                           help="pick a scheme for a model + cluster")
    _add_model_args(p_rec)
    p_rec.add_argument("--bandwidth", type=float, default=None,
                       help="NIC Gbit/s (default: p3.8xlarge's 10)")
    p_rec.set_defaults(fn=cmd_recommend)

    p_adv = sub.add_parser("advise",
                           help="sharded Pareto sweep over the full "
                                "scheme x hyperparameter grid")
    _add_model_args(p_adv)
    p_adv.add_argument("--bandwidth", type=float, default=None,
                       help="calibration NIC Gbit/s (default: "
                            "p3.8xlarge's 10)")
    p_adv.add_argument("--world-sizes", type=int, nargs="+",
                       default=[8, 16, 32, 64], metavar="P",
                       help="world sizes to sweep (default: 8 16 32 64)")
    p_adv.add_argument("--min-bandwidth", type=float, default=1.0,
                       metavar="GBPS",
                       help="sweep lower bound in Gbit/s (default: 1)")
    p_adv.add_argument("--max-bandwidth", type=float, default=30.0,
                       metavar="GBPS",
                       help="sweep upper bound in Gbit/s (default: 30)")
    p_adv.add_argument("--bandwidth-points", type=int, default=8192,
                       metavar="N",
                       help="bandwidth samples per (candidate, world "
                            "size) pair; the default grid prices over "
                            "1.5M configs (default: 8192)")
    p_adv.add_argument("--shard-points", type=int, default=4096,
                       metavar="N",
                       help="bandwidth points per engine shard — the "
                            "bounded-memory unit of work (default: 4096)")
    p_adv.add_argument("--top", type=int, default=12, metavar="N",
                       help="frontier rows to print (default: 12)")
    p_adv.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for shard pricing "
                            "(default: 1, serial; output is "
                            "byte-identical for any value)")
    p_adv.add_argument("--cache", default=None, metavar="DIR",
                       help="content-addressed shard result cache "
                            "(default: off)")
    p_adv.add_argument("--cache-mem-mb", type=float, default=0.0,
                       metavar="MB",
                       help="in-process hot tier for the cache "
                            "(default: 0, disabled)")
    p_adv.set_defaults(fn=cmd_advise)

    p_what = sub.add_parser("whatif", help="bandwidth/compute sweeps")
    _add_model_args(p_what)
    p_what.add_argument("--scheme", default="powersgd:rank=4",
                        help="e.g. powersgd:rank=4, topk:fraction=0.01")
    p_what.add_argument("--bandwidth", type=float, default=None)
    p_what.set_defaults(fn=cmd_whatif)

    p_sim = sub.add_parser("simulate", help="simulate one configuration")
    _add_model_args(p_sim)
    p_sim.add_argument("--scheme", default=None)
    p_sim.add_argument("--iterations", type=int, default=60)
    p_sim.add_argument("--faults", default=None, metavar="SPEC",
                       help="JSON FaultSchedule to inject (see "
                            "docs/faults.md for the schema)")
    p_sim.add_argument("--trace", default=None, metavar="PATH",
                       help="export a Perfetto/chrome://tracing JSON "
                            "timeline here")
    p_sim.add_argument("--trace-iterations", type=int, default=3,
                       metavar="N",
                       help="iterations per worker in the exported "
                            "trace (default: 3)")
    p_sim.add_argument("--trace-workers", type=int, default=2,
                       metavar="W",
                       help="simulated workers (processes) in the "
                            "exported trace (default: 2)")
    p_sim.add_argument("--metrics", action="store_true",
                       help="print the telemetry snapshot at the end")
    p_sim.add_argument("--sim-mode", default="auto", choices=SIM_MODES,
                       help="simulation execution scheme (default: auto — "
                            "the vectorized fast path, including under "
                            "--faults, whose schedules it applies as "
                            "array masks, and under --trace, whose span "
                            "timelines are reconstructed from the batch "
                            "kernel bit-identically to the event loop)")
    p_sim.set_defaults(fn=cmd_simulate)

    p_met = sub.add_parser("metrics",
                           help="render a run manifest's metrics "
                                "snapshot")
    p_met.add_argument("--manifest", default=None, metavar="PATH",
                       help="manifest to read (default: "
                            "<cache>/manifest.json when --cache is set)")
    p_met.add_argument("--cache", default=None, metavar="DIR",
                       help="cache directory whose manifest.json to "
                            "read")
    p_met.add_argument("--format", default="text",
                       choices=("text", "prom"),
                       help="output format: human-readable text "
                            "(default) or Prometheus text exposition "
                            "0.0.4")
    p_met.set_defaults(fn=cmd_metrics)

    p_srv = sub.add_parser("serve",
                           help="run the persistent what-if/simulation "
                                "HTTP service")
    p_srv.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    p_srv.add_argument("--port", type=int, default=8758,
                       help="TCP port; 0 picks an ephemeral one and "
                            "prints it (default: 8758)")
    p_srv.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="engine worker processes for simulation "
                            "batches (default: 1, in-process)")
    p_srv.add_argument("--cache", default=None, metavar="DIR",
                       help="content-addressed result cache shared by "
                            "all requests (default: off)")
    p_srv.add_argument("--cache-mem-mb", type=float, default=0.0,
                       metavar="MB",
                       help="in-process hot tier for the cache: keep up "
                            "to MB megabytes of recently-touched "
                            "entries in memory in front of the disk "
                            "tiers (default: 0, disabled)")
    p_srv.add_argument("--cache-preload", action="store_true",
                       help="warm start: load the cache's pack index "
                            "(and, with --cache-mem-mb, the hot tier) "
                            "before accepting requests")
    p_srv.add_argument("--queue-depth", type=int, default=64, metavar="N",
                       help="admission queue capacity; beyond it "
                            "submissions are rejected 503 (default: 64)")
    p_srv.add_argument("--quota-rps", type=float, default=None,
                       metavar="R",
                       help="per-tenant sustained requests/s; over-quota "
                            "submissions get a structured 429 with "
                            "Retry-After (default: unlimited)")
    p_srv.add_argument("--quota-burst", type=float, default=10.0,
                       metavar="B",
                       help="per-tenant burst size for --quota-rps "
                            "(default: 10)")
    p_srv.add_argument("--batch-window-ms", type=float, default=20.0,
                       metavar="MS",
                       help="how long the scheduler lingers after the "
                            "first queued request so concurrent "
                            "requests coalesce into one engine batch "
                            "(default: 20)")
    p_srv.add_argument("--max-batch-requests", type=int, default=8,
                       metavar="N",
                       help="most requests coalesced into one batch "
                            "(default: 8)")
    p_srv.add_argument("--request-timeout-s", type=float, default=300.0,
                       metavar="S",
                       help="default per-request deadline; requests "
                            "that wait it out in the queue expire "
                            "unexecuted (default: 300)")
    p_srv.set_defaults(fn=cmd_serve)

    p_cache = sub.add_parser("cache",
                             help="inspect and maintain a simulation "
                                  "result cache directory")
    p_cache.add_argument("action", choices=("stats", "compact", "verify"),
                         help="stats: tier sizes and counters; compact: "
                              "pack legacy per-key files into append-"
                              "only segments; verify: re-read every "
                              "entry and report corruption (exit 1 if "
                              "any)")
    p_cache.add_argument("--cache", required=True, metavar="DIR",
                         help="cache directory to operate on")
    p_cache.set_defaults(fn=cmd_cache)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    telemetry_logs.configure(level=args.log_level,
                             json_mode=args.log_json)
    if args.no_telemetry:
        telemetry_metrics.disable()
    else:
        telemetry_metrics.enable()
    log = get_logger("repro.cli")
    try:
        return args.fn(args)
    except ReproError as exc:
        log.error(str(exc), error_type=type(exc).__name__,
                  command=args.command)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
