"""Vectorized batch evaluation of a full simulation run.

:meth:`DDPSimulator.run <repro.simulator.ddp.DDPSimulator.run>` needs
only two numbers per iteration — sync time and iteration end — yet the
event path replays the whole span-producing machinery 110 times in pure
Python.  This module computes the same numbers for *all* iterations at
once as NumPy array operations:

* the run's entire jitter sequence is drawn in **one** RNG call: an
  ``(iterations × draws-per-iteration)`` lognormal matrix whose
  row-major fill order is exactly the event path's sequential draw
  order, so both paths consume identical variates from the same seed;
* per-layer backward times become an ``(iterations × layers)`` product
  plus a row-wise prefix sum (bucket-ready times);
* bucket all-reduces are priced once per run through the broadcasting
  collective costs (:func:`repro.collectives.ring_allreduce_time_batch`)
  and pushed through the FIFO comm-stream recurrence
  :func:`repro.core.perf_model.bucket_pipeline_end` — the §4.1 model's
  ``max(γ·T_comp, (k-1)·T_comm) + T_comm(b̂)`` evaluated exactly;
* a jitter-free config needs **no** Monte-Carlo axis at all: every
  iteration is identical, so the kernel runs once (the analytic
  closed form, O(buckets) with no event queue) and the result is
  replicated.

Bit-identity with the event path is a hard invariant, not an
approximation: every elementary IEEE-754 operation is exactly rounded,
so an elementwise array op equals the scalar op on each element, and
this module is written so the *sequence* of operations per element —
multiplication association, ``cumsum`` accumulation order, the
``max``/``+`` pipeline recurrence — matches the event path's exactly.
``tests/test_batch_equivalence.py`` pins the invariant across schemes,
world sizes, algorithms and jitter settings.

Fault schedules are served here too: :func:`run_batch_many` resolves
the whole :class:`~repro.faults.FaultSchedule` once into per-iteration
arrays (:meth:`FaultInjector.resolve_range
<repro.faults.FaultInjector.resolve_range>`) and applies them as masks
and broadcasts — compute stretch and stalls scale rows, degraded
bandwidths and surviving world sizes regroup the collective pricing,
and retransmit delays are drawn vectorized from the same
``(seed, iteration, transfer_index)``-seeded streams the event path
uses.  The same machinery stacks *several* simulators sharing one
model/topology (an engine job family) into a single kernel call.

Span-level timeline traces do not need the event path either: the
kernels optionally record the intermediate arrays that delimit span
boundaries (``record=`` on a :data:`FaultedKernel`), and
:mod:`repro.simulator.reconstruct` reassembles them into
event-identical :class:`~repro.simulator.trace.IterationTrace` objects
— so ``mode="auto"`` has no fallback left (see
:meth:`DDPSimulator.resolve_mode <repro.simulator.ddp.DDPSimulator.resolve_mode>`).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..collectives import ring_allreduce_time_batch
from ..core.perf_model import bucket_pipeline_end
from ..errors import ConfigurationError
from ..faults import ResolvedFaults
from ..telemetry.metrics import get_registry
from .ddp import DDPSimulator, TimingResult

#: A kernel maps the jitter matrix ``J`` (``n`` rows) to the
#: ``(forward_end, sync_end, iteration_end)`` arrays of all rows.
Kernel = Callable[[np.ndarray, int], Tuple[np.ndarray, np.ndarray, np.ndarray]]


class _DrawPlan:
    """The per-iteration jitter draw pattern, in event-path order.

    The event path draws a lognormal variate per jittered quantity, in a
    fixed order per iteration, and skips the draw entirely when the
    sigma is zero.  Builders register each potential draw here —
    :meth:`column` returns the matrix column that will hold it, or
    ``None`` when no draw happens — and :meth:`draw` then materializes
    the whole run's draws in one RNG call.  ``numpy`` fills the
    ``(n, k)`` output in row-major order: row ``i`` is iteration ``i``'s
    draws left to right, exactly the sequence a threaded generator
    would produce.
    """

    def __init__(self) -> None:
        self.sigmas: List[float] = []

    def column(self, sigma: float) -> Optional[int]:
        """Register one draw; its column index, or ``None`` if skipped."""
        if sigma <= 0:
            return None
        self.sigmas.append(float(sigma))
        return len(self.sigmas) - 1

    def columns(self, sigma: float, count: int) -> Optional[slice]:
        """Register ``count`` consecutive draws of the same sigma."""
        if sigma <= 0 or count == 0:
            return None
        start = len(self.sigmas)
        self.sigmas.extend([float(sigma)] * count)
        return slice(start, start + count)

    def draw(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """All of the run's jitter in one call: an ``(n, k)`` matrix."""
        if not self.sigmas:
            return np.ones((n, 0))
        sigma = np.broadcast_to(
            np.asarray(self.sigmas, dtype=float), (n, len(self.sigmas)))
        return rng.lognormal(mean=0.0, sigma=sigma)


def _col(J: np.ndarray, idx: Optional[int], n: int) -> np.ndarray:
    """Jitter column ``idx``, or an all-ones vector for a skipped draw
    (``x * 1.0`` is an exact identity, matching the event path's
    jitter-of-1.0 shortcut)."""
    if idx is None:
        return np.ones(n)
    return J[:, idx]


def _cols(J: np.ndarray, sl: Optional[slice], n: int,
          count: int) -> np.ndarray:
    """Jitter column block ``sl``, or all-ones for skipped draws."""
    if sl is None:
        return np.ones((n, count))
    return J[:, sl]


def _allreduce_times(sim: DDPSimulator, payloads: np.ndarray,
                     p: int, bw_scale: float = 1.0) -> np.ndarray:
    """Vectorized ``sim._allreduce_time`` over an array of payloads.

    Ring (the paper's forced algorithm and the default) broadcasts in
    one expression; the ablation algorithms price per payload through
    the scalar dispatcher — the bucket count is small, and the scalar
    path keeps their exact arithmetic without duplicating it here.
    ``bw_scale`` is the fault injector's degraded-bandwidth multiplier
    (1.0 healthy), applied exactly as the scalar dispatcher applies it.
    """
    if sim.config.allreduce_algorithm == "ring":
        return ring_allreduce_time_batch(
            payloads, p, sim.fabric.min_bandwidth() * bw_scale,
            sim.fabric.alpha_s)
    return np.asarray(
        [sim._allreduce_time(float(b), p, bw_scale) for b in payloads],
        dtype=float)


# ----- per-path kernel builders ------------------------------------------------
#
# Each builder prices everything iteration-independent once, registers
# the path's draw pattern on the plan (in the event path's exact draw
# order), and returns (kernel, wire bytes per iteration).  The kernels
# replicate the event path's arithmetic operation by operation; the
# comments flag each ordering constraint.


def _plan_baseline(sim: DDPSimulator, bs: int, plan: _DrawPlan,
                   ) -> Tuple[Kernel, float]:
    """syncSGD / ddp_overlap schemes: bucketed, overlapped all-reduce."""
    cfg = sim.config
    p = sim.cluster.world_size
    if sim._is_baseline:
        wire_scale, hook_cost = 1.0, 0.0
    else:
        cost = sim._scheme_cost(p)
        wire_scale = cost.wire_bytes / sim.model.grad_bytes
        hook_cost = cost.encode_decode_s
    overlap = cfg.overlap_communication and p > 1
    stretch = cfg.gamma if overlap else 1.0
    fwd_base = sim._forward_time(bs)
    opt_base = sim._optimizer_time()
    bucket_sizes, close_idx = sim._baseline_bucket_plan()
    nb = len(bucket_sizes)
    # (t * stretch) precomputed; the per-iteration jitter multiplies the
    # product, preserving the event path's (t * stretch) * j association.
    scaled = np.asarray(sim._backward_base_times(bs), dtype=float) * stretch
    if p > 1:
        durs = _allreduce_times(
            sim, np.asarray(bucket_sizes, dtype=float) * wire_scale, p)
    else:
        durs = np.zeros(nb)

    # Event-path draw order: forward, one per backward layer, one per
    # bucket collective (drawn even at p == 1 — the jitter multiply sits
    # outside the p > 1 guard there), bucket-cast only when it exists,
    # optimizer.
    c_fwd = plan.column(cfg.compute_jitter)
    sl_layers = plan.columns(cfg.compute_jitter, scaled.size)
    sl_comm = plan.columns(cfg.comm_jitter, nb)
    c_hook = plan.column(cfg.compute_jitter) if hook_cost > 0 else None
    c_opt = plan.column(cfg.compute_jitter)
    wire = float(sum(bucket_sizes)) * wire_scale if p > 1 else 0.0

    def kernel(J: np.ndarray, n: int):
        fwd_end = fwd_base * _col(J, c_fwd, n)
        layers = scaled * _cols(J, sl_layers, n, scaled.size)
        # Row-wise prefix sum: cumsum accumulates strictly sequentially
        # (never pairwise), matching the event path's running clock.
        completion = np.cumsum(layers, axis=1) + fwd_end[:, None]
        backward_end = completion[:, -1]
        if overlap:
            ready = completion[:, close_idx]
        else:
            ready = np.broadcast_to(backward_end[:, None], (n, nb))
        durations = durs * _cols(J, sl_comm, n, nb)
        sync_end = np.maximum(
            bucket_pipeline_end(ready, durations, fwd_end), backward_end)
        if hook_cost > 0:
            sync_end = sync_end + hook_cost * _col(J, c_hook, n)
        start = np.maximum(sync_end, backward_end)
        iter_end = start + opt_base * _col(J, c_opt, n)
        return fwd_end, sync_end, iter_end

    return kernel, wire


def _plan_sequential(sim: DDPSimulator, bs: int, plan: _DrawPlan,
                     ) -> Tuple[Kernel, float]:
    """Sequential compression: backward → encode → collective → decode."""
    cfg = sim.config
    p = sim.cluster.world_size
    cost = sim._scheme_cost(p)
    fwd_base = sim._forward_time(bs)
    bwd_base = sim._backward_time(bs)
    enc_base = cost.encode_decode_s + sim._hook_overhead()
    comm_base = sim._collective_time(cost, p) if p > 1 else 0.0
    opt_base = sim._optimizer_time()

    # Draw order: forward, backward, encode/decode, collective (only
    # drawn when p > 1 on this path), optimizer.
    c_fwd = plan.column(cfg.compute_jitter)
    c_bwd = plan.column(cfg.compute_jitter)
    c_enc = plan.column(cfg.compute_jitter)
    c_comm = plan.column(cfg.comm_jitter) if p > 1 else None
    c_opt = plan.column(cfg.compute_jitter)
    wire = cost.wire_bytes if p > 1 else 0.0

    def kernel(J: np.ndarray, n: int):
        fwd_end = fwd_base * _col(J, c_fwd, n)
        backward_end = fwd_end + bwd_base * _col(J, c_bwd, n)
        enc_dec = enc_base * _col(J, c_enc, n)
        encode_end = backward_end + enc_dec / 2.0
        if p > 1:
            comm_end = encode_end + comm_base * _col(J, c_comm, n)
        else:
            comm_end = encode_end + 0.0
        sync_end = comm_end + enc_dec / 2.0
        start = np.maximum(sync_end, backward_end)
        iter_end = start + opt_base * _col(J, c_opt, n)
        return fwd_end, sync_end, iter_end

    return kernel, wire


def _plan_overlapped(sim: DDPSimulator, bs: int, plan: _DrawPlan,
                     ) -> Tuple[Kernel, float]:
    """Figure 3's losing strategy: encode interleaved with backward."""
    cfg = sim.config
    p = sim.cluster.world_size
    cost = sim._scheme_cost(p)
    fwd_base = sim._forward_time(bs)
    bwd_base = sim._backward_time(bs)
    enc_base = cost.encode_decode_s + sim._hook_overhead()
    comm_base = 0.0 if p == 1 else sim._collective_time(cost, p)
    opt_base = sim._optimizer_time()
    pen = cfg.contention_penalty
    waves = 4

    # Draw order: forward, backward, encode/decode, the shared wave
    # collective (drawn even at p == 1 on this path), optimizer.
    c_fwd = plan.column(cfg.compute_jitter)
    c_bwd = plan.column(cfg.compute_jitter)
    c_enc = plan.column(cfg.compute_jitter)
    c_comm = plan.column(cfg.comm_jitter)
    c_opt = plan.column(cfg.compute_jitter)
    wire = cost.wire_bytes if p > 1 else 0.0

    def kernel(J: np.ndarray, n: int):
        fwd_end = fwd_base * _col(J, c_fwd, n)
        t_bwd = bwd_base * _col(J, c_bwd, n)
        enc_dec = enc_base * _col(J, c_enc, n)
        stretched = (t_bwd + enc_dec / 2.0) * pen
        compute_end = fwd_end + stretched
        comm_total = comm_base * _col(J, c_comm, n)
        sync_end = compute_end
        if p > 1:
            ready = np.stack(
                [fwd_end + stretched * (w + 1) / waves
                 for w in range(waves)], axis=1)
            sync_end = bucket_pipeline_end(
                ready, (comm_total / waves)[:, None], fwd_end)
        sync_end = np.maximum(sync_end, compute_end) + enc_dec / 2.0
        start = np.maximum(sync_end, compute_end)
        iter_end = start + opt_base * _col(J, c_opt, n)
        return fwd_end, sync_end, iter_end

    return kernel, wire


# ----- faulted path ------------------------------------------------------------
#
# Fault schedules rewrite per-iteration state — compute stretch,
# degraded bandwidth, surviving world size, recovery stalls, retransmit
# risk — so the fault-free builders' run-constant scalars become per-row
# arrays here.  Two extra mechanisms keep bit-identity:
#
# * a _SlotLayout instead of a _DrawPlan: the event path's draw count
#   varies per iteration (the sequential path skips its comm draw when
#   an elastic crash shrinks the world to 1; the bucket-cast draw only
#   happens when the hook cost at that iteration's world size is
#   positive), so each registered slot carries a per-row *presence*
#   mask and one flat lognormal call replays exactly the draws the
#   event path would have made, in its order;
# * per-(world size, bandwidth-scale) combo pricing: collective costs
#   are computed once per distinct degraded state through the *scalar*
#   dispatchers (exact for every algorithm) and scattered to rows.


class _SlotLayout:
    """Per-iteration draw slots with row-varying presence.

    Like :class:`_DrawPlan`, builders register each potential draw in
    event-path order; unlike it, a registered slot may be *absent* on
    some rows (iterations) — the presence mask decides.  Absent cells
    hold 1.0 (the event path's jitter-of-1.0 shortcut) and consume no
    RNG stream.
    """

    def __init__(self) -> None:
        self.sigmas: List[float] = []

    def slot(self, sigma: float) -> Optional[int]:
        """Register one draw; its slot index, or ``None`` if the sigma
        is zero (never drawn on any row)."""
        if sigma <= 0:
            return None
        self.sigmas.append(float(sigma))
        return len(self.sigmas) - 1

    def slots(self, sigma: float, count: int) -> Optional[slice]:
        """Register ``count`` consecutive draws of the same sigma."""
        if sigma <= 0 or count == 0:
            return None
        start = len(self.sigmas)
        self.sigmas.extend([float(sigma)] * count)
        return slice(start, start + count)

    def draw(self, rng: np.random.Generator,
             present: np.ndarray) -> np.ndarray:
        """One member's jitter: an ``(n, S)`` matrix, 1.0 where absent.

        The present cells are drawn in one flat lognormal call; boolean
        masking walks the matrix row-major, so the stream consumption
        order is exactly the event path's sequential per-iteration
        draws (and identical to :meth:`_DrawPlan.draw` when every cell
        is present).
        """
        n = present.shape[0]
        S = len(self.sigmas)
        if S == 0:
            return np.ones((n, 0))
        J = np.ones((n, S))
        sigma = np.broadcast_to(np.asarray(self.sigmas, dtype=float),
                                (n, S))
        flat = sigma[present]
        if flat.size:
            J[present] = rng.lognormal(mean=0.0, sigma=flat)
        return J


class _FaultRows:
    """Stacked per-row fault state across a batch call's members."""

    def __init__(self, slow: np.ndarray, bw: np.ndarray, p: np.ndarray,
                 stall: np.ndarray):
        self.slow = slow    # compute slowdown (>= 1)
        self.bw = bw        # bandwidth scale (<= 1)
        self.p = p          # surviving world size (int)
        self.stall = stall  # start-of-iteration stall seconds


#: One member of a stacked batch call: its simulator, its row slice,
#: and its resolved fault range (``None`` for a fault-free member).
_Member = Tuple[DDPSimulator, slice, Optional[ResolvedFaults]]


def _stack_member_faults(sims: Sequence[DDPSimulator],
                         n: int) -> Tuple[_FaultRows, List[_Member]]:
    """Resolve every member's fault schedule into stacked row arrays."""
    slows, bws, ps, stalls = [], [], [], []
    members: List[_Member] = []
    row = 0
    for sim in sims:
        sl = slice(row, row + n)
        if sim._injector is None:
            slows.append(np.ones(n))
            bws.append(np.ones(n))
            ps.append(np.full(n, sim.cluster.world_size, dtype=np.int64))
            stalls.append(np.zeros(n))
            resolved = None
        else:
            resolved = sim._injector.resolve_range(0, n)
            slows.append(resolved.compute_slowdown)
            bws.append(resolved.bandwidth_scale)
            ps.append(resolved.world_size)
            stalls.append(resolved.stall_s)
        members.append((sim, sl, resolved))
        row += n
    F = _FaultRows(np.concatenate(slows), np.concatenate(bws),
                   np.concatenate(ps), np.concatenate(stalls))
    return F, members


def _combos(F: _FaultRows) -> List[Tuple[Tuple[int, float], np.ndarray]]:
    """Rows grouped by distinct (world size, bandwidth scale) state.

    Fault schedules produce a handful of distinct degraded states over
    a run, so pricing once per combo through the scalar dispatchers is
    both exact and cheap."""
    groups: Dict[Tuple[int, float], List[int]] = {}
    for i in range(F.p.size):
        groups.setdefault((int(F.p[i]), float(F.bw[i])), []).append(i)
    return [(key, np.asarray(rows)) for key, rows in groups.items()]


def _per_p(F: _FaultRows, fn: Callable[[int], float]) -> np.ndarray:
    """Map a per-world-size scalar onto rows (one call per distinct p)."""
    out = np.empty(F.p.size)
    for p in np.unique(F.p):
        out[F.p == p] = fn(int(p))
    return out


def _retransmit_arrays(members: Sequence[_Member], durations: np.ndarray,
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """Retransmit delays/replays for every (row, transfer) cell.

    ``durations`` is the jittered transfer-duration matrix ``(N, T)``;
    members without retransmit risk contribute zeros without touching
    any RNG (exactly like the event path, which never rolls the dice
    for them)."""
    N, T = durations.shape
    delays = np.zeros((N, T))
    replays = np.zeros((N, T), dtype=np.int64)
    for sim, sl, resolved in members:
        if resolved is None or not resolved.has_retransmits:
            continue
        injector = sim._injector
        assert injector is not None
        for t in range(T):
            d, r = injector.retransmit_delay_range(
                0, len(resolved), t, durations[sl, t])
            delays[sl, t] = d
            replays[sl, t] = r
    return delays, replays


#: A faulted kernel maps (jitter matrix, fault rows, members) to the
#: per-row (forward_end, sync_end, iteration_end, wire bytes,
#: retransmit delays, retransmit replays).  Kernels also accept an
#: optional ``record`` dict; when given, the intermediate arrays that
#: delimit per-iteration span boundaries (bucket/wave pipeline starts
#: and ends, encode/decode instants, optimizer starts) are stored into
#: it so :mod:`repro.simulator.reconstruct` can rebuild event-identical
#: traces without re-running the event loop.  Recording never changes
#: the arithmetic: the same operations run in the same order.
FaultedKernel = Callable[
    [np.ndarray, _FaultRows, Sequence[_Member]],
    Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray,
          np.ndarray]]

#: A presence function maps fault rows to the (N, S) draw-presence mask.
PresenceFn = Callable[[_FaultRows], np.ndarray]


def _plan_baseline_faulted(lead: DDPSimulator, bs: int,
                           layout: _SlotLayout,
                           ) -> Tuple[PresenceFn, FaultedKernel]:
    """Faulted syncSGD / ddp_overlap: bucketed, overlapped all-reduce."""
    cfg = lead.config
    fwd_base = lead._forward_time(bs)
    opt_base = lead._optimizer_time()
    bucket_sizes, close_idx = lead._baseline_bucket_plan()
    sizes = np.asarray(bucket_sizes, dtype=float)
    nb = len(bucket_sizes)
    base_layers = np.asarray(lead._backward_base_times(bs), dtype=float)
    overlap_enabled = cfg.overlap_communication
    has_hook = not lead._is_baseline

    def wire_scale_at(p: int) -> float:
        if lead._is_baseline:
            return 1.0
        return lead._scheme_cost(p).wire_bytes / lead.model.grad_bytes

    def hook_at(p: int) -> float:
        if lead._is_baseline:
            return 0.0
        return lead._scheme_cost(p).encode_decode_s

    # Event-path draw order: forward, per layer, per bucket collective
    # (drawn even at p == 1), bucket-cast when the hook cost at that
    # iteration's world size is positive, optimizer.
    c_fwd = layout.slot(cfg.compute_jitter)
    sl_layers = layout.slots(cfg.compute_jitter, base_layers.size)
    sl_comm = layout.slots(cfg.comm_jitter, nb)
    c_hook = layout.slot(cfg.compute_jitter) if has_hook else None
    c_opt = layout.slot(cfg.compute_jitter)

    def presence(F: _FaultRows) -> np.ndarray:
        pres = np.ones((F.p.size, len(layout.sigmas)), dtype=bool)
        if c_hook is not None:
            pres[:, c_hook] = _per_p(F, hook_at) > 0
        return pres

    def kernel(J: np.ndarray, F: _FaultRows, members: Sequence[_Member],
               record: Optional[Dict[str, Any]] = None):
        N = F.p.size
        fwd_end = F.stall + (fwd_base * F.slow) * _col(J, c_fwd, N)
        overlap_row = (F.p > 1) if overlap_enabled \
            else np.zeros(N, dtype=bool)
        # The event path passes (stretch * slow) into the layer times;
        # (t * ss) * j preserves its association.
        ss = np.where(overlap_row, cfg.gamma, 1.0) * F.slow
        layers = ((base_layers[None, :] * ss[:, None])
                  * _cols(J, sl_layers, N, base_layers.size))
        completion = np.cumsum(layers, axis=1) + fwd_end[:, None]
        backward_end = completion[:, -1]
        ready = np.where(overlap_row[:, None], completion[:, close_idx],
                         backward_end[:, None])
        wire_row = _per_p(F, wire_scale_at)
        durs = np.zeros((N, nb))
        for (p, bw), rows in _combos(F):
            if p > 1:
                durs[rows] = _allreduce_times(
                    lead, sizes * wire_scale_at(p), p, bw)
        durations = durs * _cols(J, sl_comm, N, nb)
        delays, replays = _retransmit_arrays(members, durations)
        # The FIFO comm-stream recurrence, with each bucket's
        # retransmit penalty appended after its transfer (the event
        # path's comm_free update order).
        if record is not None:
            bucket_start = np.empty((N, nb))
            bucket_end = np.empty((N, nb))
        end = fwd_end
        for k in range(nb):
            begun = np.maximum(ready[:, k], end)
            done = begun + durations[:, k]
            if record is not None:
                bucket_start[:, k] = begun
                bucket_end[:, k] = done
            end = done + delays[:, k]
        sync_pre_hook = np.maximum(end, backward_end)
        sync_end = sync_pre_hook
        hook_term = None
        if has_hook:
            hook_row = _per_p(F, hook_at)
            hook_term = (hook_row * F.slow) * _col(J, c_hook, N)
            sync_end = sync_end + hook_term
        start = np.maximum(sync_end, backward_end)
        iter_end = start + (opt_base * F.slow) * _col(J, c_opt, N)
        wire = np.where(F.p > 1, float(sizes.sum()) * wire_row, 0.0)
        wire = wire + (sizes[None, :] * wire_row[:, None]
                       * replays).sum(axis=1)
        if record is not None:
            record.update(
                path="baseline", fwd_end=fwd_end, backward_end=backward_end,
                bucket_sizes=sizes, wire_row=wire_row,
                bucket_start=bucket_start, bucket_end=bucket_end,
                delays=delays, replays=replays,
                sync_pre_hook=sync_pre_hook, hook_term=hook_term,
                sync_end=sync_end, opt_start=start, iter_end=iter_end)
        return fwd_end, sync_end, iter_end, wire, delays, replays

    return presence, kernel


def _plan_sequential_faulted(lead: DDPSimulator, bs: int,
                             layout: _SlotLayout,
                             ) -> Tuple[PresenceFn, FaultedKernel]:
    """Faulted sequential compression: encode → collective → decode."""
    cfg = lead.config
    fwd_base = lead._forward_time(bs)
    bwd_base = lead._backward_time(bs)
    hook_over = lead._hook_overhead()
    opt_base = lead._optimizer_time()

    # Draw order: forward, backward, encode/decode, collective (only
    # when that iteration's world size exceeds 1), optimizer.
    c_fwd = layout.slot(cfg.compute_jitter)
    c_bwd = layout.slot(cfg.compute_jitter)
    c_enc = layout.slot(cfg.compute_jitter)
    c_comm = layout.slot(cfg.comm_jitter)
    c_opt = layout.slot(cfg.compute_jitter)

    def presence(F: _FaultRows) -> np.ndarray:
        pres = np.ones((F.p.size, len(layout.sigmas)), dtype=bool)
        if c_comm is not None:
            pres[:, c_comm] = F.p > 1
        return pres

    def kernel(J: np.ndarray, F: _FaultRows, members: Sequence[_Member],
               record: Optional[Dict[str, Any]] = None):
        N = F.p.size
        enc_row = _per_p(
            F, lambda p: lead._scheme_cost(p).encode_decode_s + hook_over)
        wire_row = _per_p(F, lambda p: lead._scheme_cost(p).wire_bytes)
        comm_base = np.zeros(N)
        for (p, bw), rows in _combos(F):
            if p > 1:
                comm_base[rows] = lead._collective_time(
                    lead._scheme_cost(p), p, bw)
        fwd_end = F.stall + (fwd_base * F.slow) * _col(J, c_fwd, N)
        backward_end = fwd_end + (bwd_base * F.slow) * _col(J, c_bwd, N)
        enc_dec = (enc_row * F.slow) * _col(J, c_enc, N)
        encode_end = backward_end + enc_dec / 2.0
        comm = comm_base * _col(J, c_comm, N)
        agg_end = encode_end + comm
        delays, replays = _retransmit_arrays(members, comm[:, None])
        comm_end = agg_end + delays[:, 0]
        sync_end = comm_end + enc_dec / 2.0
        start = np.maximum(sync_end, backward_end)
        iter_end = start + (opt_base * F.slow) * _col(J, c_opt, N)
        wire = np.where(comm > 0, wire_row, 0.0) + wire_row * replays[:, 0]
        if record is not None:
            record.update(
                path="sequential", fwd_end=fwd_end,
                backward_end=backward_end, encode_end=encode_end,
                comm=comm, agg_end=agg_end, comm_end=comm_end,
                wire_row=wire_row, delays=delays, replays=replays,
                sync_end=sync_end, opt_start=start, iter_end=iter_end)
        return fwd_end, sync_end, iter_end, wire, delays, replays

    return presence, kernel


def _plan_overlapped_faulted(lead: DDPSimulator, bs: int,
                             layout: _SlotLayout,
                             ) -> Tuple[PresenceFn, FaultedKernel]:
    """Faulted Figure-3 strategy: encode interleaved with backward."""
    cfg = lead.config
    fwd_base = lead._forward_time(bs)
    bwd_base = lead._backward_time(bs)
    hook_over = lead._hook_overhead()
    opt_base = lead._optimizer_time()
    pen = cfg.contention_penalty
    waves = 4

    # Draw order: forward, backward, encode/decode, the shared wave
    # collective (drawn even at p == 1 on this path), optimizer.
    c_fwd = layout.slot(cfg.compute_jitter)
    c_bwd = layout.slot(cfg.compute_jitter)
    c_enc = layout.slot(cfg.compute_jitter)
    c_comm = layout.slot(cfg.comm_jitter)
    c_opt = layout.slot(cfg.compute_jitter)

    def presence(F: _FaultRows) -> np.ndarray:
        return np.ones((F.p.size, len(layout.sigmas)), dtype=bool)

    def kernel(J: np.ndarray, F: _FaultRows, members: Sequence[_Member],
               record: Optional[Dict[str, Any]] = None):
        N = F.p.size
        enc_row = _per_p(
            F, lambda p: lead._scheme_cost(p).encode_decode_s + hook_over)
        wire_row = _per_p(F, lambda p: lead._scheme_cost(p).wire_bytes)
        comm_base = np.zeros(N)
        for (p, bw), rows in _combos(F):
            if p > 1:
                comm_base[rows] = lead._collective_time(
                    lead._scheme_cost(p), p, bw)
        fwd_end = F.stall + (fwd_base * F.slow) * _col(J, c_fwd, N)
        t_bwd = (bwd_base * F.slow) * _col(J, c_bwd, N)
        enc_dec = (enc_row * F.slow) * _col(J, c_enc, N)
        stretched = (t_bwd + enc_dec / 2.0) * pen
        compute_end = fwd_end + stretched
        comm_total = comm_base * _col(J, c_comm, N)
        per_wave = comm_total / waves
        wave_durs = np.broadcast_to(per_wave[:, None], (N, waves))
        delays, replays = _retransmit_arrays(members, wave_durs)
        if record is not None:
            wave_start = np.empty((N, waves))
            wave_end = np.empty((N, waves))
        end = fwd_end
        for w in range(waves):
            ready = fwd_end + stretched * (w + 1) / waves
            begun = np.maximum(ready, end)
            done = begun + per_wave
            if record is not None:
                wave_start[:, w] = begun
                wave_end[:, w] = done
            end = done + delays[:, w]
        # Single-worker iterations never enter the wave loop on the
        # event path: their sync end is the stretched compute end.
        pre = np.where(F.p > 1, end, compute_end)
        decode_start = np.maximum(pre, compute_end)
        sync_end = decode_start + enc_dec / 2.0
        start = np.maximum(sync_end, compute_end)
        iter_end = start + (opt_base * F.slow) * _col(J, c_opt, N)
        wire = np.where(F.p > 1, wire_row, 0.0)
        wire = wire + (wire_row[:, None] / waves * replays).sum(axis=1)
        if record is not None:
            record.update(
                path="overlapped", fwd_end=fwd_end,
                backward_end=compute_end, waves=waves,
                wave_start=wave_start, wave_end=wave_end,
                wire_row=wire_row, delays=delays, replays=replays,
                decode_start=decode_start, sync_end=sync_end,
                opt_start=start, iter_end=iter_end)
        return fwd_end, sync_end, iter_end, wire, delays, replays

    return presence, kernel


def run_batch_many(sims: Sequence[DDPSimulator],
                   batch_size: Optional[int] = None,
                   iterations: int = 110, warmup: int = 10,
                   seeds: Sequence[int] = (0,)) -> List[TimingResult]:
    """Evaluate one or more runs — faulted or not — in one kernel call.

    Every simulator must share the structural state the kernel prices
    once (model, cluster size, scheme, config); members may differ in
    fault schedule and seed.  This is the cross-config batch dimension:
    an engine job family (for example the reliability exhibit's
    clean/NIC-straggler/compute-straggler triplets) evaluates as one
    stacked array computation instead of one kernel call per job.

    Each member's :class:`TimingResult` is bit-identical to its own
    ``sim.run(..., mode="event")``; members' RNG streams are fully
    independent (per-member jitter seed, per-member schedule seed), so
    stacking changes nothing but wall-clock time.

    Raises:
        ConfigurationError: invalid protocol, mismatched members, or a
            seed count that does not match the member count.
        OutOfMemoryError: the same deterministic OOM the event path
            raises (memory state is structural, so it is shared by
            every member).
    """
    if not sims:
        raise ConfigurationError("run_batch_many needs >= 1 simulator")
    if len(seeds) != len(sims):
        raise ConfigurationError(
            f"got {len(sims)} simulators but {len(seeds)} seeds")
    if iterations <= warmup:
        raise ConfigurationError(
            f"iterations ({iterations}) must exceed warmup ({warmup})")
    lead = sims[0]
    for sim in sims[1:]:
        if (sim.model.name != lead.model.name
                or sim.cluster.world_size != lead.cluster.world_size
                or sim.scheme.label != lead.scheme.label
                or sim.config != lead.config):
            raise ConfigurationError(
                "run_batch_many members must share model, cluster size, "
                "scheme and config (only faults and seeds may differ)")
    bs = batch_size if batch_size is not None else lead.model.default_batch_size
    # Memory is structural (model, batch size, config) — one check
    # covers every member, raising the same deterministic OOM each
    # member's own event run would.
    if lead.config.check_memory:
        lead.check_memory(bs)

    layout = _SlotLayout()
    if lead._is_baseline or lead.scheme.ddp_overlap:
        presence_fn, kernel = _plan_baseline_faulted(lead, bs, layout)
    elif lead.config.overlap_compression:
        presence_fn, kernel = _plan_overlapped_faulted(lead, bs, layout)
    else:
        presence_fn, kernel = _plan_sequential_faulted(lead, bs, layout)

    n = iterations
    F, members = _stack_member_faults(sims, n)
    pres = presence_fn(F)
    J = np.ones((F.p.size, len(layout.sigmas)))
    for (sim, sl, _), seed in zip(members, seeds):
        J[sl] = layout.draw(np.random.default_rng(seed), pres[sl])
    fwd_end, sync_end, iter_end, wire, delays, replays = kernel(
        J, F, members)
    sync = sync_end - fwd_end

    registry = get_registry()
    results: List[TimingResult] = []
    for sim, sl, resolved in members:
        member_sync = sync[sl]
        member_iter = iter_end[sl]
        injector = sim._injector
        if injector is not None:
            # Rebuild the event path's per-run counters: total replays,
            # and the delay accumulated in its (iteration, transfer)
            # visit order (cumsum is strictly sequential, and the
            # event path's skipped zero-delay calls add exactly 0.0).
            injector.reset_run_counters()
            member_delays = delays[sl].ravel()
            member_replays = replays[sl].ravel()
            total_replays = int(member_replays.sum())
            if total_replays:
                injector.retransmits_injected = total_replays
                injector.retransmit_delay_s = float(
                    np.cumsum(member_delays)[-1])
            if registry.enabled:
                for idx in np.flatnonzero(member_replays):
                    registry.counter("sim_fault_retransmits_total").inc(
                        int(member_replays[idx]))
                    registry.histogram(
                        "sim_fault_retransmit_delay_s").observe(
                        float(member_delays[idx]))
                for state in resolved.states:
                    injector.record_iteration(state)
        if registry.enabled:
            label = sim.scheme.label
            registry.counter("sim_iterations_total",
                             scheme=label).inc(iterations)
            hist = registry.histogram("sim_sync_time_s", scheme=label)
            for value in member_sync:
                hist.observe(float(value))
            wire_total = float(wire[sl].sum())
            if wire_total > 0:
                registry.counter("sim_wire_bytes_total",
                                 scheme=label).inc(wire_total)
        results.append(TimingResult(
            model=sim.model.name,
            scheme=sim.scheme.label,
            world_size=sim.cluster.world_size,
            batch_size=bs,
            sync_times=tuple(float(x) for x in member_sync[warmup:]),
            iteration_times=tuple(float(x) for x in member_iter[warmup:]),
        ))
    return results


# ----- entry point -------------------------------------------------------------


def run_batch(sim: DDPSimulator, batch_size: Optional[int] = None,
              iterations: int = 110, warmup: int = 10,
              seed: int = 0) -> TimingResult:
    """Evaluate a whole measurement run as array operations.

    Produces a :class:`TimingResult` bit-identical to
    ``sim.run(..., mode="event")`` for any simulator, faulted or not;
    fault-schedule-bearing simulators route through
    :func:`run_batch_many`'s masked kernels.

    Raises:
        ConfigurationError: invalid iteration protocol.
        OutOfMemoryError: the same deterministic OOM the event path
            raises on its first iteration (checked once — it cannot
            vary across iterations).
    """
    if iterations <= warmup:
        raise ConfigurationError(
            f"iterations ({iterations}) must exceed warmup ({warmup})")
    if sim._injector is not None:
        return run_batch_many([sim], batch_size, iterations=iterations,
                              warmup=warmup, seeds=(seed,))[0]
    bs = batch_size if batch_size is not None else sim.model.default_batch_size
    if sim.config.check_memory:
        sim.check_memory(bs)

    plan = _DrawPlan()
    if sim._is_baseline or sim.scheme.ddp_overlap:
        kernel, wire = _plan_baseline(sim, bs, plan)
    elif sim.config.overlap_compression:
        kernel, wire = _plan_overlapped(sim, bs, plan)
    else:
        kernel, wire = _plan_sequential(sim, bs, plan)

    # The analytic closed form: with every sigma zero there is nothing
    # stochastic — no draws happen on either path — so one kernel row
    # is the whole run.
    n = iterations if plan.sigmas else 1
    J = plan.draw(np.random.default_rng(seed), n)
    fwd_end, sync_end, iter_end = kernel(J, n)
    sync = sync_end - fwd_end

    measured = iterations - warmup
    if n == 1:
        sync_times = (float(sync[0]),) * measured
        iter_times = (float(iter_end[0]),) * measured
    else:
        sync_times = tuple(float(x) for x in sync[warmup:])
        iter_times = tuple(float(x) for x in iter_end[warmup:])

    registry = get_registry()
    if registry.enabled:
        label = sim.scheme.label
        registry.counter("sim_iterations_total",
                         scheme=label).inc(iterations)
        hist = registry.histogram("sim_sync_time_s", scheme=label)
        if n == 1:
            for _ in range(iterations):
                hist.observe(float(sync[0]))
        else:
            for value in sync:
                hist.observe(float(value))
        if wire > 0:
            registry.counter("sim_wire_bytes_total",
                             scheme=label).inc(wire * iterations)

    return TimingResult(
        model=sim.model.name,
        scheme=sim.scheme.label,
        world_size=sim.cluster.world_size,
        batch_size=bs,
        sync_times=sync_times,
        iteration_times=iter_times,
    )
