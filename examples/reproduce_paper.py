#!/usr/bin/env python
"""Reproduce every table and figure of the paper in one run.

Iterates the experiment registry (Table 1, Table 2, Figures 3-13) and
prints each regenerated table.  ``--quick`` cuts simulator iterations for
a fast smoke pass; the default matches the paper's 110-iterations
protocol (a few minutes total).

Run:  python examples/reproduce_paper.py [--quick] [--save DIR] [ids...]
e.g.  python examples/reproduce_paper.py --quick fig4 fig11
      python examples/reproduce_paper.py --save results/

Setting ``REPRO_EXAMPLES_SMOKE=1`` forces ``--quick`` — CI runs every
example headlessly under that flag (see ``make examples``).
"""

import os
import sys
import time

from repro.experiments import EXPERIMENTS

#: Experiments that accept iterations/warmup (the simulator-driven ones).
SIMULATED = {"fig3", "fig4", "fig5", "fig6", "fig7", "fig8"}

#: ext-tta trains a real (small) model; --quick trims its steps instead.
TRAINED = {"ext-tta"}

FLOAT_FORMATS = {"fig7": "{:.3f}", "fig8": "{:.3f}", "fig9": "{:.2f}",
                 "fig11": "{:.3f}", "fig12": "{:.2f}", "fig13": "{:.3f}",
                 "table2": "{:.2f}"}


def main() -> None:
    args = [a for a in sys.argv[1:]]
    quick = ("--quick" in args
             or os.environ.get("REPRO_EXAMPLES_SMOKE") == "1")
    save_dir = None
    if "--save" in args:
        idx = args.index("--save")
        if idx + 1 >= len(args):
            raise SystemExit("--save requires a directory argument")
        save_dir = args[idx + 1]
        os.makedirs(save_dir, exist_ok=True)
        args = args[:idx] + args[idx + 2:]
    ids = [a for a in args if not a.startswith("-")] or list(EXPERIMENTS)

    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        raise SystemExit(
            f"unknown experiment ids {unknown}; "
            f"available: {sorted(EXPERIMENTS)}")

    for exp_id in ids:
        runner = EXPERIMENTS[exp_id]
        kwargs = {}
        if quick and exp_id in SIMULATED:
            kwargs = {"iterations": 15, "warmup": 3}
        elif quick and exp_id in TRAINED:
            kwargs = {"steps": 60}
        start = time.perf_counter()
        result = runner(**kwargs)
        elapsed = time.perf_counter() - start
        print("=" * 78)
        print(result.render_table(FLOAT_FORMATS.get(exp_id, "{:.1f}")))
        print(f"  [{elapsed:.1f}s]")
        if save_dir is not None:
            path = os.path.join(save_dir, f"{exp_id}.json")
            result.save(path)
            print(f"  saved {path}")
        print()


if __name__ == "__main__":
    main()
