"""Integration tests: the paper's six headline findings, end to end.

Each test exercises the full stack (model zoo -> compute model ->
fabric -> simulator and/or performance model) and asserts one of the
numbered findings from the paper's introduction.  These are the
"does the reproduction actually say what the paper says" checks; the
benchmark harness re-runs the same claims at full fidelity.
"""

import pytest

from repro.compression import (
    FP16Scheme,
    PowerSGDScheme,
    SignSGDScheme,
    SyncSGDScheme,
    TopKScheme,
)
from repro.core import (
    PerfModelInputs,
    required_compression,
    speedup_over_syncsgd,
    syncsgd_time,
)
from repro.errors import OutOfMemoryError
from repro.hardware import cluster_for_gpus
from repro.models import get_model
from repro.simulator import DDPConfig, DDPSimulator
from repro.units import gbps_to_bytes_per_s

BW10 = gbps_to_bytes_per_s(10)
QUIET = DDPConfig(compute_jitter=0.0, comm_jitter=0.0)


def sim_mean(model_name, gpus, scheme=None, bs=None, config=QUIET,
             iters=12):
    model = get_model(model_name)
    sim = DDPSimulator(model, cluster_for_gpus(gpus), scheme=scheme,
                       config=config)
    return sim.run(bs, iterations=iters, warmup=2).mean


class TestFinding1NoUtilityInOvercompressing:
    """'A compression to 33-50% of original size suffices' — fp16-level
    compression already achieves near-ideal scaling at >= 10 Gbit/s."""

    def test_required_ratio_below_4x_at_datacenter_bandwidth(self):
        for name, bs in (("resnet50", 32), ("resnet101", 32),
                         ("bert-base", 8)):
            rc = required_compression(get_model(name), bs, 64, BW10)
            assert rc.required_ratio < 4.0, name

    def test_fp16_within_10pct_of_any_compression(self):
        # fp16's 2x is enough: compare against PowerSGD's 60x on BERT.
        bert = get_model("bert-base")
        inputs = PerfModelInputs(world_size=64,
                                 bandwidth_bytes_per_s=BW10, batch_size=12)
        s_fp16 = speedup_over_syncsgd(bert, FP16Scheme(), inputs)
        s_power = speedup_over_syncsgd(bert, PowerSGDScheme(4), inputs)
        assert s_fp16 > s_power - 0.10


class TestFinding2BatchSizeErodesCompression:
    def test_resnet101_speedup_monotone_decreasing_in_batch(self):
        speedups = []
        for bs in (16, 32, 64):
            base = sim_mean("resnet101", 64, bs=bs)
            comp = sim_mean("resnet101", 64, PowerSGDScheme(4), bs=bs)
            speedups.append((base - comp) / base)
        assert speedups[0] > speedups[1] > speedups[2]
        assert speedups[0] > 0.25       # ~+40% in the paper
        assert speedups[2] < 0.05       # ~-10% in the paper


class TestFinding3NonAllReducibleDoesNotScale:
    def test_signsgd_resnet101_96gpus_vs_baseline(self):
        # Paper: ~1075 ms vs ~265 ms. Assert the >= 2.5x gap and the
        # right orders of magnitude.
        sign = sim_mean("resnet101", 96, SignSGDScheme(), bs=64)
        sync = sim_mean("resnet101", 96, bs=64)
        assert sign / sync > 2.5
        assert 0.8 < sign < 1.5     # seconds
        assert 0.2 < sync < 0.45

    def test_allreducible_flat_gather_linear(self):
        flat = [sim_mean("resnet50", g, PowerSGDScheme(4), bs=64)
                for g in (8, 96)]
        linear = [sim_mean("resnet50", g, SignSGDScheme(), bs=64)
                  for g in (8, 96)]
        assert flat[1] / flat[0] < 1.2
        assert linear[1] / linear[0] > 3.0

    def test_bert_gather_methods_oom_past_32(self):
        bert = get_model("bert-base")
        for scheme in (SignSGDScheme(), TopKScheme(0.01)):
            sim = DDPSimulator(bert, cluster_for_gpus(48), scheme=scheme)
            with pytest.raises(OutOfMemoryError):
                sim.run(12, iterations=4, warmup=1)


class TestFinding4CompressionComputeContention:
    def test_overlap_slower_for_all_fig3_methods(self):
        for scheme in (PowerSGDScheme(4), TopKScheme(0.01),
                       SignSGDScheme()):
            seq = sim_mean("resnet101", 16, scheme, bs=64)
            ovl = sim_mean("resnet101", 16, scheme, bs=64,
                           config=DDPConfig(compute_jitter=0.0,
                                            comm_jitter=0.0,
                                            overlap_compression=True))
            assert ovl > seq, scheme.label


class TestFinding5LimitedOpportunity:
    def test_headroom_under_250ms_at_10gbps(self):
        # 'the difference ... is less than 200 ms ... even for BERT'.
        from repro.core import headroom_curve
        for name, bs, cap in (("resnet50", 64, 0.10),
                              ("resnet101", 64, 0.15),
                              ("bert-base", 12, 0.30)):
            pts = headroom_curve(get_model(name), [96], BW10,
                                 batch_size=bs)
            assert pts[0].headroom_s < cap, name

    def test_topk_encode_alone_exceeds_resnet_headroom(self):
        # Table 2 Top-K encode (~240-300 ms) > the ~50-100 ms window.
        from repro.core import headroom_curve
        cost = TopKScheme(0.01).cost(get_model("resnet50"), 96)
        pts = headroom_curve(get_model("resnet50"), [96], BW10,
                             batch_size=64)
        assert cost.encode_decode_s > 2 * pts[0].headroom_s


class TestFinding6PaperHeadlineSpeedups:
    def test_bert_powersgd_rank_ordering_at_96(self):
        """Fig 4 BERT: rank4 ~ +23%, rank8 ~ +14%, rank16 negative."""
        base = sim_mean("bert-base", 96, bs=12, iters=16)
        speedups = {}
        for rank in (4, 8, 16):
            comp = sim_mean("bert-base", 96, PowerSGDScheme(rank), bs=12,
                            iters=16)
            speedups[rank] = (base - comp) / base
        assert 0.15 < speedups[4] < 0.35
        assert 0.05 < speedups[8] < 0.25
        assert speedups[16] < 0.02
        assert speedups[4] > speedups[8] > speedups[16]

    def test_resnets_powersgd_no_win_at_batch64(self):
        for name in ("resnet50", "resnet101"):
            base = sim_mean(name, 32, bs=64)
            comp = sim_mean(name, 32, PowerSGDScheme(4), bs=64)
            assert comp > 0.95 * base, name

    def test_topk_never_beats_baseline(self):
        for gpus in (16, 96):
            base = sim_mean("resnet50", gpus, bs=64)
            comp = sim_mean("resnet50", gpus, TopKScheme(0.01), bs=64)
            assert comp > base


class TestModelVsSimulatorConsistency:
    def test_syncsgd_model_tracks_simulator(self):
        # Calibrated model within 10% of the simulator across scale.
        for gpus in (8, 64):
            measured = sim_mean("resnet50", gpus, bs=64,
                                config=DDPConfig())
            inputs = PerfModelInputs(world_size=gpus,
                                     bandwidth_bytes_per_s=BW10,
                                     batch_size=64)
            predicted = syncsgd_time(get_model("resnet50"), inputs).total
            assert predicted == pytest.approx(measured, rel=0.12)
