#!/usr/bin/env python
"""Talk to a running ``repro serve`` instance with nothing but stdlib.

Submits a what-if request ("will compression speed up ResNet-50 on my
32-GPU cluster?"), prints the ranked recommendation the server streams
back, then fans three seed-varied simulations through ``POST
/v1/simulate`` and polls ``GET /v1/jobs/<id>`` for the rows — the
server coalesces all three into one vectorized kernel call.

Run:  repro serve &        # or: python -m repro serve
      python examples/serve_client.py [http://127.0.0.1:8758]

(``REPRO_EXAMPLES_SMOKE=1`` starts a private server on an ephemeral
port so the example is self-contained for CI.)
"""

import json
import os
import subprocess
import sys
import time
import urllib.request

DEFAULT_BASE = "http://127.0.0.1:8758"


def post(base: str, path: str, body: dict) -> dict:
    request = urllib.request.Request(
        base + path, data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=120) as resp:
        return json.loads(resp.read())


def poll(base: str, job_id: str, timeout_s: float = 120.0) -> dict:
    """Long-poll a job until it reaches a terminal state."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        url = f"{base}/v1/jobs/{job_id}?wait_s=10"
        with urllib.request.urlopen(url, timeout=30) as resp:
            state = json.loads(resp.read())
        if state["status"] in ("done", "failed", "expired"):
            return state
    raise TimeoutError(f"job {job_id} still {state['status']!r}")


def main() -> None:
    base = sys.argv[1] if len(sys.argv) > 1 else DEFAULT_BASE
    server = None
    if os.environ.get("REPRO_EXAMPLES_SMOKE") == "1":
        # Self-contained for CI: spawn a private server and read the
        # ephemeral port off its "listening on" line.
        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE, text=True)
        base = server.stdout.readline().strip().rsplit(" ", 1)[-1]

    try:
        # --- price the cluster: one synchronous what-if request.
        out = post(base, "/v1/whatif", {"model": "resnet50", "gpus": 32})
        print(out["result"]["rendered"])
        print()
        for entry in out["result"]["crossovers"]:
            for crossing in entry["crossings"]:
                print(f"{entry['scheme']}: breaks even with syncSGD at "
                      f"{crossing['gbps']:.1f} Gbit/s "
                      f"({crossing['direction']}ward crossing)")

        # --- simulate three seeds asynchronously; the server stacks
        # them into one kernel call and streams rows back.
        submitted = post(base, "/v1/simulate", {
            "model": "resnet50", "gpus": 8,
            "scheme": "powersgd:rank=4",
            "iterations": 20, "seeds": [0, 1, 2],
        })
        print(f"\nsubmitted simulation job {submitted['id']} "
              f"({submitted['status']}); polling...")
        state = poll(base, submitted["id"])
        for row in state["rows"]:
            print(f"  seed {row['seed']}: {row['mean_s'] * 1e3:7.1f} ms "
                  f"(± {row['std_s'] * 1e3:.1f})"
                  + ("  [cached]" if row["cached"] else ""))
    finally:
        if server is not None:
            server.terminate()
            server.wait(timeout=10)


if __name__ == "__main__":
    main()
