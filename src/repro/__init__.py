"""repro — reproduction of "On the Utility of Gradient Compression in
Distributed Training Systems" (Agarwal et al., MLSys 2022).

The package provides, built from scratch on numpy/scipy:

* :mod:`repro.core` — the paper's performance model for DDP training
  with and without gradient compression, §4.3 calibration, ideal-scaling
  analysis (§5), and the what-if engine (§6);
* :mod:`repro.models` — layer-exact metadata for ResNet-50/101/152,
  BERT base/large, GPT-2 small and VGG-16;
* :mod:`repro.compression` — numerically real implementations of
  PowerSGD, Top-K, signSGD (majority vote), Random-K, QSGD, TernGrad,
  ATOMO, 1-bit SGD, DGC, fp16 and a GradiVeq-style projector, plus the
  calibrated kernel-cost model behind the paper's Table 2;
* :mod:`repro.collectives` — analytic cost models and step-accurate
  numeric ring/tree all-reduce, all-gather, parameter server;
* :mod:`repro.simulator` — a discrete-event cluster simulator with
  DDP semantics (bucketing, overlap, contention, incast, OOM);
* :mod:`repro.training` — a numpy training substrate for end-to-end
  convergence validation of the compression algorithms;
* :mod:`repro.experiments` — a runner per table/figure of the paper.

Quickstart::

    from repro.models import get_model
    from repro.hardware import cluster_for_gpus
    from repro.simulator import DDPSimulator
    from repro.compression import PowerSGDScheme

    model = get_model("resnet50")
    cluster = cluster_for_gpus(32)
    base = DDPSimulator(model, cluster).run()
    comp = DDPSimulator(model, cluster, scheme=PowerSGDScheme(4)).run()
    print(base.mean, comp.mean)
"""

from . import (
    analysis,
    collectives,
    compression,
    core,
    experiments,
    hardware,
    models,
    network,
    reporting,
    simulator,
    telemetry,
    training,
)
from .compute import ComputeModel
from .errors import (
    CalibrationError,
    CollectiveError,
    CompressionError,
    ConfigurationError,
    OutOfMemoryError,
    ReproError,
    SimulationError,
)

__version__ = "1.1.0"

__all__ = [
    "core", "models", "hardware", "network", "collectives", "compression",
    "simulator", "training", "experiments", "analysis", "reporting",
    "telemetry",
    "ComputeModel",
    "ReproError", "ConfigurationError", "OutOfMemoryError",
    "CollectiveError", "CompressionError", "SimulationError",
    "CalibrationError",
    "__version__",
]
