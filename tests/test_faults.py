"""Fault schedules, the injector, and simulator integration."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    FAULT_STREAM,
    CrashFault,
    FaultInjector,
    FaultSchedule,
    LinkFault,
    NodeFault,
    RetransmitFault,
    StragglerFault,
)
from repro.hardware import cluster_for_gpus
from repro.network import Fabric
from repro.simulator import DDPSimulator


class TestScheduleValidation:
    def test_straggler_slowdown_must_exceed_one(self):
        with pytest.raises(ConfigurationError):
            StragglerFault(worker=0, slowdown=1.0)
        with pytest.raises(ConfigurationError):
            StragglerFault(worker=0, slowdown=0.5)

    def test_negative_worker_rejected(self):
        with pytest.raises(ConfigurationError):
            StragglerFault(worker=-1, slowdown=2.0)

    def test_link_factor_must_be_in_unit_interval(self):
        with pytest.raises(ConfigurationError):
            LinkFault(node_a=0, node_b=1, factor=0.0)
        with pytest.raises(ConfigurationError):
            LinkFault(node_a=0, node_b=1, factor=1.5)
        LinkFault(node_a=0, node_b=1, factor=1.0)  # boundary is legal

    def test_flapping_period_must_exceed_duration(self):
        with pytest.raises(ConfigurationError):
            LinkFault(node_a=0, node_b=1, factor=0.5,
                      duration_iterations=10, period_iterations=10)
        LinkFault(node_a=0, node_b=1, factor=0.5,
                  duration_iterations=10, period_iterations=11)

    def test_period_requires_duration(self):
        with pytest.raises(ConfigurationError):
            NodeFault(node=0, factor=0.5, period_iterations=10)

    def test_retransmit_drop_rate_below_one(self):
        with pytest.raises(ConfigurationError):
            RetransmitFault(drop_rate=1.0)
        with pytest.raises(ConfigurationError):
            RetransmitFault(drop_rate=-0.1)
        RetransmitFault(drop_rate=0.0)

    def test_retransmit_backoff_and_retries(self):
        with pytest.raises(ConfigurationError):
            RetransmitFault(drop_rate=0.1, backoff=0.5)
        with pytest.raises(ConfigurationError):
            RetransmitFault(drop_rate=0.1, max_retries=0)

    def test_crash_recovery_policy_checked(self):
        with pytest.raises(ConfigurationError):
            CrashFault(worker=0, at_iteration=5, recovery="reboot")

    def test_crash_again_after_restart_is_allowed(self):
        # A "restart" recovery brings the worker back, so a later crash
        # of the same worker is a coherent (if unlucky) history.
        FaultSchedule(crashes=[
            CrashFault(worker=3, at_iteration=5),
            CrashFault(worker=3, at_iteration=9),
        ])

    def test_crash_after_elastic_departure_rejected(self):
        # An elastically-departed worker is gone for the rest of the
        # run; crashing it again has no physical interpretation (and
        # used to double-decrement the surviving world size).
        with pytest.raises(ConfigurationError):
            FaultSchedule(crashes=[
                CrashFault(worker=3, at_iteration=5, recovery="elastic"),
                CrashFault(worker=3, at_iteration=9),
            ])

    def test_duplicate_crash_iteration_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule(crashes=[
                CrashFault(worker=3, at_iteration=5),
                CrashFault(worker=3, at_iteration=5, recovery="elastic"),
            ])

    def test_window_activity(self):
        fault = StragglerFault(worker=0, slowdown=2.0,
                               start_iteration=10, duration_iterations=5)
        assert not fault.active(9)
        assert fault.active(10)
        assert fault.active(14)
        assert not fault.active(15)

    def test_persistent_window(self):
        fault = NodeFault(node=0, factor=0.5, start_iteration=3)
        assert not fault.active(2)
        assert fault.active(10_000)

    def test_flapping_window_repeats(self):
        fault = LinkFault(node_a=0, node_b=1, factor=0.5,
                          start_iteration=0, duration_iterations=2,
                          period_iterations=5)
        pattern = [fault.active(i) for i in range(10)]
        assert pattern == [True, True, False, False, False] * 2


class TestScheduleSerialization:
    def _full_schedule(self):
        return FaultSchedule(
            seed=7,
            stragglers=[StragglerFault(worker=1, slowdown=2.0,
                                       start_iteration=10,
                                       duration_iterations=20)],
            links=[LinkFault(node_a=0, node_b=1, factor=0.5,
                             duration_iterations=2, period_iterations=6)],
            nodes=[NodeFault(node=0, factor=0.25)],
            retransmits=[RetransmitFault(drop_rate=0.05)],
            crashes=[CrashFault(worker=2, at_iteration=15,
                                recovery="elastic")],
        )

    def test_json_round_trip(self):
        schedule = self._full_schedule()
        assert FaultSchedule.from_json(schedule.to_json()) == schedule

    def test_save_load_round_trip(self, tmp_path):
        schedule = self._full_schedule()
        path = tmp_path / "faults.json"
        schedule.save(path)
        assert FaultSchedule.load(path) == schedule

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule.from_payload({"seed": 1, "gremlins": []})
        with pytest.raises(ConfigurationError):
            FaultSchedule.from_payload({
                "stragglers": [{"worker": 0, "slowdown": 2.0,
                                "color": "red"}]})

    def test_empty_schedule(self):
        empty = FaultSchedule()
        assert empty.is_empty
        assert empty.count() == 0
        assert not self._full_schedule().is_empty

    def test_payload_omits_empty_lists(self):
        payload = FaultSchedule(seed=3, nodes=[
            NodeFault(node=0, factor=0.5)]).to_payload()
        assert "stragglers" not in payload
        assert "crashes" not in payload
        assert payload["seed"] == 3

    def test_describe_mentions_counts_and_seed(self):
        text = self._full_schedule().describe()
        assert "1 stragglers" in text
        assert "seed 7" in text

    def test_lists_coerced_to_tuples(self):
        schedule = FaultSchedule(stragglers=[
            StragglerFault(worker=0, slowdown=2.0)])
        assert isinstance(schedule.stragglers, tuple)


class TestInjector:
    def _injector(self, cluster, schedule):
        return FaultInjector(schedule, cluster, Fabric(cluster))

    def test_max_straggler_slowdown_wins(self, small_cluster):
        inj = self._injector(small_cluster, FaultSchedule(stragglers=[
            StragglerFault(worker=0, slowdown=1.5),
            StragglerFault(worker=1, slowdown=3.0),
        ]))
        state = inj.faults_for(0)
        assert state.compute_slowdown == 3.0
        assert "straggler" in state.active

    def test_clean_iteration_is_identity(self, small_cluster):
        inj = self._injector(small_cluster, FaultSchedule(stragglers=[
            StragglerFault(worker=0, slowdown=2.0, start_iteration=50)]))
        state = inj.faults_for(0)
        assert state.compute_slowdown == 1.0
        assert state.bandwidth_scale == 1.0
        assert state.stall_s == 0.0
        assert not state.degraded

    def test_node_fault_scales_bandwidth(self, small_cluster):
        # Two nodes, one pair: degrading node 0 scales the pairwise
        # minimum by exactly the fault's factor.
        inj = self._injector(small_cluster, FaultSchedule(nodes=[
            NodeFault(node=0, factor=0.25)]))
        state = inj.faults_for(0)
        assert state.bandwidth_scale == pytest.approx(0.25)
        assert "degraded-link" in state.active

    def test_link_fault_scales_bandwidth(self, small_cluster):
        inj = self._injector(small_cluster, FaultSchedule(links=[
            LinkFault(node_a=0, node_b=1, factor=0.5)]))
        assert inj.faults_for(0).bandwidth_scale == pytest.approx(0.5)

    def test_elastic_crash_shrinks_world(self, small_cluster):
        inj = self._injector(small_cluster, FaultSchedule(crashes=[
            CrashFault(worker=2, at_iteration=5, recovery="elastic",
                       stall_s=0.5)]))
        assert inj.faults_for(4).world_size == 8
        at = inj.faults_for(5)
        assert at.world_size == 7
        assert at.stall_s == 0.5
        assert "crash-elastic" in at.active
        after = inj.faults_for(6)
        assert after.world_size == 7
        assert after.stall_s == 0.0

    def test_restart_crash_keeps_world(self, small_cluster):
        inj = self._injector(small_cluster, FaultSchedule(crashes=[
            CrashFault(worker=2, at_iteration=5, recovery="restart",
                       stall_s=1.0)]))
        at = inj.faults_for(5)
        assert at.world_size == 8
        assert at.stall_s == 1.0
        assert inj.faults_for(6).world_size == 8

    def test_elastically_dropped_straggler_stops_straggling(
            self, small_cluster):
        inj = self._injector(small_cluster, FaultSchedule(
            stragglers=[StragglerFault(worker=2, slowdown=4.0)],
            crashes=[CrashFault(worker=2, at_iteration=10,
                                recovery="elastic")]))
        assert inj.faults_for(9).compute_slowdown == 4.0
        assert inj.faults_for(10).compute_slowdown == 1.0

    def test_harshest_retransmit_policy_wins(self, small_cluster):
        inj = self._injector(small_cluster, FaultSchedule(retransmits=[
            RetransmitFault(drop_rate=0.01),
            RetransmitFault(drop_rate=0.2),
        ]))
        assert inj.faults_for(0).retransmit.drop_rate == 0.2

    def test_retransmit_delay_deterministic(self, small_cluster):
        schedule = FaultSchedule(seed=11, retransmits=[
            RetransmitFault(drop_rate=0.5)])
        a = self._injector(small_cluster, schedule)
        b = self._injector(small_cluster, schedule)
        draws_a = [a.retransmit_delay(3, t, 1e-3) for t in range(50)]
        draws_b = [b.retransmit_delay(3, t, 1e-3) for t in range(50)]
        assert draws_a == draws_b
        assert any(replays for _, replays in draws_a)  # rate 0.5: some drop

    def test_retransmit_zero_rate_is_free(self, small_cluster):
        inj = self._injector(small_cluster, FaultSchedule(retransmits=[
            RetransmitFault(drop_rate=0.0)]))
        assert inj.retransmit_delay(0, 0, 1e-3) == (0.0, 0)

    def test_topology_validation(self, small_cluster):
        # 8 workers, 2 nodes.
        with pytest.raises(ConfigurationError):
            self._injector(small_cluster, FaultSchedule(stragglers=[
                StragglerFault(worker=8, slowdown=2.0)]))
        with pytest.raises(ConfigurationError):
            self._injector(small_cluster, FaultSchedule(crashes=[
                CrashFault(worker=12, at_iteration=0)]))
        with pytest.raises(ConfigurationError):
            self._injector(small_cluster, FaultSchedule(links=[
                LinkFault(node_a=0, node_b=2, factor=0.5)]))
        with pytest.raises(ConfigurationError):
            self._injector(small_cluster, FaultSchedule(nodes=[
                NodeFault(node=2, factor=0.5)]))

    def test_summary_mentions_schedule(self, small_cluster):
        inj = self._injector(small_cluster, FaultSchedule(seed=7, nodes=[
            NodeFault(node=0, factor=0.5)]))
        assert "faults:" in inj.summary()
        assert "seed 7" in inj.summary()


class TestSimulatorIntegration:
    def test_empty_schedule_builds_no_injector(self, tiny_model,
                                               small_cluster):
        sim = DDPSimulator(tiny_model, small_cluster,
                           faults=FaultSchedule())
        assert sim.injector is None

    def test_straggler_slows_the_run(self, resnet50, small_cluster):
        clean = DDPSimulator(resnet50, small_cluster).run(
            batch_size=64, iterations=10, warmup=2)
        hurt = DDPSimulator(resnet50, small_cluster, faults=FaultSchedule(
            stragglers=[StragglerFault(worker=0, slowdown=3.0)])).run(
            batch_size=64, iterations=10, warmup=2)
        assert hurt.mean > clean.mean * 1.2

    def test_nic_fault_slows_communication(self, resnet50, small_cluster):
        clean = DDPSimulator(resnet50, small_cluster).run(
            batch_size=64, iterations=10, warmup=2)
        hurt = DDPSimulator(resnet50, small_cluster, faults=FaultSchedule(
            nodes=[NodeFault(node=0, factor=0.2)])).run(
            batch_size=64, iterations=10, warmup=2)
        assert hurt.mean > clean.mean

    def test_fault_window_span_in_trace(self, resnet50, small_cluster):
        sim = DDPSimulator(resnet50, small_cluster, faults=FaultSchedule(
            stragglers=[StragglerFault(worker=0, slowdown=2.0,
                                       start_iteration=2,
                                       duration_iterations=1)]))
        import numpy as np
        rng = np.random.default_rng(0)
        clean_trace = sim.simulate_iteration(64, rng, iteration=1)
        hurt_trace = sim.simulate_iteration(64, rng, iteration=2)
        assert not [s for s in clean_trace.spans
                    if s.stream == FAULT_STREAM]
        fault_spans = [s for s in hurt_trace.spans
                       if s.stream == FAULT_STREAM]
        assert fault_spans and fault_spans[0].label == "straggler"

    def test_transient_fault_only_hits_its_window(self, resnet50,
                                                  small_cluster):
        faults = FaultSchedule(stragglers=[
            StragglerFault(worker=0, slowdown=3.0, start_iteration=4,
                           duration_iterations=2)])
        sim = DDPSimulator(resnet50, small_cluster, faults=faults)
        clean_sim = DDPSimulator(resnet50, small_cluster)
        result = sim.run(batch_size=64, iterations=8, warmup=0)
        clean = clean_sim.run(batch_size=64, iterations=8, warmup=0)
        for i in (4, 5):
            assert result.iteration_times[i] > clean.iteration_times[i] * 1.5
        for i in (0, 1, 2, 3, 6, 7):
            assert result.iteration_times[i] == pytest.approx(
                clean.iteration_times[i])

    def test_restart_crash_charges_stall_once(self, resnet50,
                                              small_cluster):
        faults = FaultSchedule(crashes=[
            CrashFault(worker=0, at_iteration=3, recovery="restart",
                       stall_s=0.7)])
        sim = DDPSimulator(resnet50, small_cluster, faults=faults)
        clean = DDPSimulator(resnet50, small_cluster).run(
            batch_size=64, iterations=6, warmup=0)
        result = sim.run(batch_size=64, iterations=6, warmup=0)
        assert result.iteration_times[3] == pytest.approx(
            clean.iteration_times[3] + 0.7)
        assert result.iteration_times[5] == pytest.approx(
            clean.iteration_times[5])

    def test_retransmits_add_delay_and_count(self, resnet50,
                                             small_cluster):
        faults = FaultSchedule(seed=7, retransmits=[
            RetransmitFault(drop_rate=0.3)])
        sim = DDPSimulator(resnet50, small_cluster, faults=faults)
        result = sim.run(batch_size=64, iterations=10, warmup=2)
        assert sim.injector.retransmits_injected > 0
        assert sim.injector.retransmit_delay_s > 0
        assert math.isfinite(result.mean)


def _forge(cls, **fields):
    """Build a fault dataclass bypassing ``__post_init__`` validation,
    to prove the injector's defense-in-depth checks stand on their own."""
    import dataclasses
    obj = object.__new__(cls)
    values = {}
    for f in dataclasses.fields(cls):
        if f.default is not dataclasses.MISSING:
            values[f.name] = f.default
    values.update(fields)
    for name, value in values.items():
        object.__setattr__(obj, name, value)
    return obj


class TestInjectorHardening:
    """Regression tests for the injector correctness fixes: topology
    defense-in-depth, elastic dedup, and per-run counter reset."""

    def _injector(self, cluster, schedule):
        return FaultInjector(schedule, cluster, Fabric(cluster))

    def test_self_link_rejected_even_when_forged(self, small_cluster):
        # LinkFault's own constructor rejects self-links; the injector
        # must too, so a forged instance cannot slip a no-op fault in.
        link = _forge(LinkFault, node_a=1, node_b=1, factor=0.5)
        schedule = FaultSchedule()
        object.__setattr__(schedule, "links", (link,))
        with pytest.raises(ConfigurationError, match="must differ"):
            self._injector(small_cluster, schedule)

    def test_nonpositive_link_factor_rejected_when_forged(
            self, small_cluster):
        link = _forge(LinkFault, node_a=0, node_b=1, factor=0.0)
        schedule = FaultSchedule()
        object.__setattr__(schedule, "links", (link,))
        with pytest.raises(ConfigurationError, match="factor"):
            self._injector(small_cluster, schedule)

    def test_nonpositive_node_factor_rejected_when_forged(
            self, small_cluster):
        node = _forge(NodeFault, node=0, factor=-0.5)
        schedule = FaultSchedule()
        object.__setattr__(schedule, "nodes", (node,))
        with pytest.raises(ConfigurationError, match="factor"):
            self._injector(small_cluster, schedule)

    def test_forged_duplicate_elastic_crash_decrements_once(
            self, small_cluster):
        # The schedule validates against duplicate elastic departures;
        # a forged duplicate must still shrink the world only once.
        crash = CrashFault(worker=1, at_iteration=2, recovery="elastic")
        schedule = FaultSchedule(crashes=[crash])
        object.__setattr__(schedule, "crashes", (crash, crash))
        inj = self._injector(small_cluster, schedule)
        assert inj.faults_for(5).world_size == \
            small_cluster.world_size - 1

    def test_restart_then_elastic_sequence_resolves(self, small_cluster):
        schedule = FaultSchedule(crashes=[
            CrashFault(worker=0, at_iteration=2, recovery="restart",
                       stall_s=0.5),
            CrashFault(worker=0, at_iteration=6, recovery="elastic"),
        ])
        inj = self._injector(small_cluster, schedule)
        assert inj.faults_for(3).world_size == small_cluster.world_size
        assert inj.faults_for(7).world_size == \
            small_cluster.world_size - 1

    def test_counters_reset_between_runs(self, resnet50, small_cluster):
        faults = FaultSchedule(seed=7, retransmits=[
            RetransmitFault(drop_rate=0.3)])
        sim = DDPSimulator(resnet50, small_cluster, faults=faults)
        sim.run(batch_size=64, iterations=10, warmup=2, mode="event")
        first = (sim.injector.retransmits_injected,
                 sim.injector.retransmit_delay_s)
        assert first[0] > 0
        sim.run(batch_size=64, iterations=10, warmup=2, mode="event")
        # Identical run, identical counters — not doubled.
        assert (sim.injector.retransmits_injected,
                sim.injector.retransmit_delay_s) == first

    def test_counters_reset_on_batch_path_too(self, resnet50,
                                              small_cluster):
        faults = FaultSchedule(seed=7, retransmits=[
            RetransmitFault(drop_rate=0.3)])
        sim = DDPSimulator(resnet50, small_cluster, faults=faults)
        sim.run(batch_size=64, iterations=10, warmup=2, mode="batch")
        first = (sim.injector.retransmits_injected,
                 sim.injector.retransmit_delay_s)
        assert first[0] > 0
        sim.run(batch_size=64, iterations=10, warmup=2, mode="batch")
        assert (sim.injector.retransmits_injected,
                sim.injector.retransmit_delay_s) == first


class TestResolveRange:
    """The injector's array API mirrors the scalar one exactly."""

    def _injector(self, cluster, schedule):
        return FaultInjector(schedule, cluster, Fabric(cluster))

    def test_matches_faults_for(self, small_cluster):
        schedule = FaultSchedule(
            seed=3,
            stragglers=[StragglerFault(worker=0, slowdown=2.0,
                                       start_iteration=2,
                                       duration_iterations=4)],
            nodes=[NodeFault(node=0, factor=0.5, start_iteration=5)],
            crashes=[CrashFault(worker=1, at_iteration=7,
                                recovery="elastic", stall_s=0.25)])
        inj = self._injector(small_cluster, schedule)
        resolved = inj.resolve_range(0, 12)
        assert len(resolved) == 12
        for i in range(12):
            state = inj.faults_for(i)
            assert resolved.states[i] == state
            assert resolved.compute_slowdown[i] == state.compute_slowdown
            assert resolved.bandwidth_scale[i] == state.bandwidth_scale
            assert resolved.world_size[i] == state.world_size
            assert resolved.stall_s[i] == state.stall_s

    def test_reversed_range_rejected(self, small_cluster):
        inj = self._injector(small_cluster, FaultSchedule(nodes=[
            NodeFault(node=0, factor=0.5)]))
        with pytest.raises(ConfigurationError):
            inj.resolve_range(5, 3)

    def test_has_retransmits_flag(self, small_cluster):
        risky = self._injector(small_cluster, FaultSchedule(retransmits=[
            RetransmitFault(drop_rate=0.2)]))
        safe = self._injector(small_cluster, FaultSchedule(nodes=[
            NodeFault(node=0, factor=0.5)]))
        assert risky.resolve_range(0, 5).has_retransmits
        assert not safe.resolve_range(0, 5).has_retransmits

    def test_retransmit_delay_range_matches_scalar(self, small_cluster):
        schedule = FaultSchedule(seed=11, retransmits=[
            RetransmitFault(drop_rate=0.5, timeout_s=1e-3)])
        vec = self._injector(small_cluster, schedule)
        scalar = self._injector(small_cluster, schedule)
        durations = [1e-3 * (i + 1) for i in range(20)]
        import numpy as np
        delays, replays = vec.retransmit_delay_range(
            0, 20, 1, np.asarray(durations))
        for i, dur in enumerate(durations):
            d, r = scalar.retransmit_delay(i, 1, dur)
            assert delays[i] == d  # bitwise
            assert replays[i] == r

    def test_retransmit_delay_range_is_pure(self, small_cluster):
        inj = self._injector(small_cluster, FaultSchedule(retransmits=[
            RetransmitFault(drop_rate=0.5)]))
        import numpy as np
        inj.retransmit_delay_range(0, 10, 0, np.full(10, 1e-3))
        assert inj.retransmits_injected == 0
        assert inj.retransmit_delay_s == 0.0
