"""Analysis helpers for the reliability exhibit's failure-mode study.

The exhibit (:func:`repro.experiments.reliability.run_reliability`)
produces, for each fault kind x scheme x bandwidth, the *penalty* a
fault imposes: faulted mean iteration time divided by the fault-free
mean.  The question the paper's reliability story turns on is *where*
a fault hurts the dense baseline materially more than a compressed
scheme — these helpers locate that bandwidth threshold from the rows.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ConfigurationError

#: Minimum penalty gap (baseline minus candidate, in ratio points)
#: counted as "materially worse".  0.10 = the fault costs the baseline
#: at least 10 percentage points more slowdown than the candidate.
DEFAULT_PENALTY_MARGIN = 0.10


def _penalty_by_bandwidth(rows: Sequence[Dict[str, Any]], fault: str,
                          scheme: str) -> Dict[float, float]:
    """Map swept bandwidth -> penalty for one (fault, scheme) pair."""
    out: Dict[float, float] = {}
    for row in rows:
        if row.get("fault") == fault and row.get("scheme") == scheme:
            out[float(row["gbps"])] = float(row["penalty"])
    return out


def fault_penalty_gap(rows: Sequence[Dict[str, Any]], fault: str,
                      scheme: str, baseline: str = "syncsgd",
                      ) -> List[Dict[str, float]]:
    """Per-bandwidth penalty gap between ``baseline`` and ``scheme``.

    Returns one dict per swept bandwidth (ascending) with keys
    ``gbps``, ``baseline_penalty``, ``scheme_penalty`` and ``gap``
    (baseline minus scheme; positive = the fault hurts the baseline
    more).  Bandwidths where either penalty is NaN (a degraded or OOM
    row) are skipped.
    """
    base = _penalty_by_bandwidth(rows, fault, baseline)
    cand = _penalty_by_bandwidth(rows, fault, scheme)
    if not base or not cand:
        raise ConfigurationError(
            f"no rows for fault={fault!r} with both {baseline!r} "
            f"and {scheme!r}")
    gaps = []
    for gbps in sorted(set(base) & set(cand)):
        b, c = base[gbps], cand[gbps]
        if math.isnan(b) or math.isnan(c):
            continue
        gaps.append({"gbps": gbps, "baseline_penalty": b,
                     "scheme_penalty": c, "gap": b - c})
    return gaps


def fault_penalty_threshold(rows: Sequence[Dict[str, Any]], fault: str,
                            scheme: str, baseline: str = "syncsgd",
                            margin: float = DEFAULT_PENALTY_MARGIN,
                            ) -> Optional[float]:
    """The bandwidth below which ``fault`` hurts ``baseline`` materially
    more than ``scheme``.

    Scans the swept bandwidths in ascending order and returns the
    largest one where the penalty gap still exceeds ``margin`` *and*
    the gap exceeded it at every lower swept bandwidth too — i.e. the
    top of the contiguous low-bandwidth region where dense allreduce
    is the fragile choice.  Returns ``None`` when the gap never
    clears the margin (the fault is scheme-neutral at every point).
    """
    threshold: Optional[float] = None
    for point in fault_penalty_gap(rows, fault, scheme, baseline):
        if point["gap"] >= margin:
            threshold = point["gbps"]
        else:
            break
    return threshold


def reliability_findings(rows: Sequence[Dict[str, Any]],
                         fault: str, schemes: Sequence[str],
                         baseline: str = "syncsgd",
                         margin: float = DEFAULT_PENALTY_MARGIN,
                         ) -> List[str]:
    """Human-readable threshold findings, one per compressed scheme.

    These become the exhibit's notes: e.g. ``"nic-straggler:
    powersgd(rank=4) is materially more robust than syncsgd below
    10 Gbit/s (gap 1.52 at 2 Gbit/s)"``.
    """
    findings = []
    for scheme in schemes:
        gaps = fault_penalty_gap(rows, fault, scheme, baseline)
        if not gaps:
            continue
        threshold = fault_penalty_threshold(rows, fault, scheme,
                                            baseline, margin)
        worst = max(gaps, key=lambda p: p["gap"])
        if threshold is not None:
            findings.append(
                f"{fault}: {scheme} is materially more robust than "
                f"{baseline} below {threshold:g} Gbit/s "
                f"(largest gap {worst['gap']:.2f} at "
                f"{worst['gbps']:g} Gbit/s)")
        else:
            findings.append(
                f"{fault}: {scheme} shows no material robustness edge "
                f"over {baseline} at any swept bandwidth "
                f"(largest gap {worst['gap']:.2f})")
    return findings
