"""Shared scaling-sweep harness for Figures 4, 5 and 6.

All three figures have the same shape: per-iteration time (gradient
computation + synchronization) of one or more compressed variants against
the syncSGD baseline, for ResNet-50 / ResNet-101 / BERT_BASE, as the GPU
count grows.  This module runs that sweep through the discrete-event
simulator, marking OOM configurations the way the paper's plot notes do.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..compression.schemes import Scheme, SyncSGDScheme
from ..errors import OutOfMemoryError
from ..models import get_model
from ..simulator import DDPSimulator
from .runner import PAPER_GPU_SWEEP, ExperimentResult, scaling_clusters

#: (model name, per-GPU batch size) triples the paper evaluates.
PAPER_WORKLOADS: Tuple[Tuple[str, int], ...] = (
    ("resnet50", 64),
    ("resnet101", 64),
    ("bert-base", 12),
)


def run_scaling_sweep(experiment_id: str, title: str,
                      schemes: Sequence[Scheme],
                      workloads: Sequence[Tuple[str, int]] = PAPER_WORKLOADS,
                      gpu_counts: Sequence[int] = PAPER_GPU_SWEEP,
                      iterations: int = 40, warmup: int = 5,
                      seed: int = 0) -> ExperimentResult:
    """Run syncSGD plus each scheme across the sweep.

    Rows contain mean/std per-iteration sync time in milliseconds; OOM
    points appear as rows with ``oom=True`` and NaN times, so downstream
    consumers see exactly where a method stopped scaling.
    """
    all_schemes: List[Scheme] = [SyncSGDScheme(), *schemes]
    rows: List[Dict[str, Any]] = []
    notes: List[str] = []
    for model_name, batch_size in workloads:
        model = get_model(model_name)
        for cluster in scaling_clusters(gpu_counts):
            for scheme in all_schemes:
                sim = DDPSimulator(model, cluster, scheme=scheme)
                try:
                    result = sim.run(batch_size, iterations=iterations,
                                     warmup=warmup, seed=seed)
                except OutOfMemoryError as exc:
                    rows.append({
                        "model": model_name,
                        "scheme": scheme.label,
                        "gpus": cluster.world_size,
                        "batch_size": batch_size,
                        "mean_ms": float("nan"),
                        "std_ms": float("nan"),
                        "oom": True,
                    })
                    notes.append(
                        f"{model_name}/{scheme.label} OOM at "
                        f"{cluster.world_size} GPUs "
                        f"({exc.required_bytes / 1e9:.1f} GB needed)")
                    continue
                rows.append({
                    "model": model_name,
                    "scheme": scheme.label,
                    "gpus": cluster.world_size,
                    "batch_size": batch_size,
                    "mean_ms": result.mean * 1e3,
                    "std_ms": result.std * 1e3,
                    "oom": False,
                })
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        columns=("model", "scheme", "gpus", "batch_size", "mean_ms",
                 "std_ms", "oom"),
        rows=tuple(rows),
        notes=tuple(notes),
    )
