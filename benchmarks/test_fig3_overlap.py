"""Figure 3: compression overlapped with backward loses to sequential."""

from repro.experiments import run_fig3


def test_fig3_overlap_vs_sequential(run_once, show):
    result = run_once(run_fig3, iterations=110, warmup=10)
    show(result, "{:.3f}")

    assert len(result.rows) == 3
    for row in result.rows:
        # The paper's §3.1 finding for every method in the figure,
        # including signSGD whose encode is nearly free.
        assert row["overlapped_ms"] > row["sequential_ms"], row["scheme"]
        # The contention penalty is material, not noise.
        assert row["overlap_penalty"] > 0.05, row["scheme"]
