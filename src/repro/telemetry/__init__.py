"""Observability: labeled metrics, structured logs, run manifests.

The measurement layer under the reproduction, mirroring the paper's own
methodology (Nsight traces, per-phase breakdowns): simulator, collective
cost models and the experiment engine record into a process-global
metrics registry; the CLI snapshots it into run manifests and the
``--metrics`` report.  Disabled (the default), every call site hits a
shared no-op handle — zero allocations, no RNG interaction, bit-identical
simulated timelines.
"""

from .logs import LEVELS, StructuredLogger, configure, get_logger
from .manifest import (
    MANIFEST_FILENAME,
    MANIFEST_VERSION,
    build_manifest,
    read_manifest,
    verify_manifest,
    write_manifest,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    disable,
    enable,
    escape_label_value,
    format_key,
    get_registry,
    metric_key,
    parse_key,
    render_prometheus,
    set_registry,
    validate_prometheus_text,
)
from .tracing import (
    NullTracer,
    TraceRecorder,
    TraceSpan,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
)

__all__ = [
    "Counter", "Gauge", "Histogram",
    "MetricsRegistry", "NullRegistry",
    "get_registry", "set_registry", "enable", "disable",
    "metric_key", "format_key", "parse_key", "escape_label_value",
    "render_prometheus", "validate_prometheus_text",
    "NullTracer", "TraceRecorder", "TraceSpan",
    "get_tracer", "set_tracer", "enable_tracing", "disable_tracing",
    "StructuredLogger", "get_logger", "configure", "LEVELS",
    "MANIFEST_FILENAME", "MANIFEST_VERSION",
    "build_manifest", "write_manifest", "read_manifest", "verify_manifest",
]
