"""Packed cold tier: append-only segments plus an offset index.

The legacy cache layout is one JSON file per key — simple, atomic, and
painfully expensive at batch granularity: a 200-job engine batch pays
200 ``open``/``write``/``rename`` round-trips (plus directory-entry
churn) to store its misses.  The pack tier amortizes that to **one
segment append and one fsync per batch**:

* ``pack-000001.jsonl`` … — append-only *segments*.  Each line is a
  self-describing record ``{"k": <key>, "p": <payload>}`` in compact
  JSON, so a segment alone is enough to rebuild its index entries.
* ``pack-index.jsonl`` — the offset index, itself append-only: one
  line ``{"k", "s", "o", "l"}`` (key, segment, byte offset, byte
  length) per record, appended after the segment flush that made the
  record durable.

Crash safety is by construction, not by locking: records are appended
segment-first (flush + fsync), index-second.  A process killed mid
flush can leave (a) a truncated segment tail the index never points at,
or (b) index lines pointing past the segment's end — both are detected
at load time (offsets validated against segment sizes, the torn last
index line dropped) and surface as plain misses plus a ``truncated``
count, never as corrupt outcomes and never as quarantine churn.
``verify`` goes further and re-reads every record; ``scan`` rebuilds
index entries straight from the segments.
"""

from __future__ import annotations

import io
import json
import os
import re
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import ConfigurationError

#: Segment file name pattern: ``pack-<6-digit-seq>.jsonl``.
SEGMENT_PATTERN = re.compile(r"^pack-(\d{6})\.jsonl$")

#: The append-only offset index living beside the segments.
INDEX_FILENAME = "pack-index.jsonl"

#: Roll to a fresh segment once the current one crosses this size, so
#: compaction and verification work in bounded pieces.
DEFAULT_SEGMENT_BYTES = 8 * 1024 * 1024


def segment_name(seq: int) -> str:
    """File name of segment number ``seq`` (1-based)."""
    return f"pack-{seq:06d}.jsonl"


@dataclass(frozen=True)
class PackLocation:
    """Where one record lives: segment file, byte offset, byte length."""

    segment: str
    offset: int
    length: int


class PackStore:
    """Reader/appender for the pack tier of one cache directory.

    Not thread-safe by itself — :class:`~repro.engine.cache.
    SimulationCache` serializes access under its own lock, which is the
    point: one lock acquisition covers a whole batch append.
    """

    def __init__(self, directory: str,
                 segment_bytes: int = DEFAULT_SEGMENT_BYTES):
        """Open the pack tier at ``directory``, loading the index.

        Index lines that fail validation (torn tail, offsets past a
        segment's end, missing segment) are dropped and counted in
        ``truncated`` — the keys simply read as misses.
        """
        if segment_bytes <= 0:
            raise ConfigurationError(
                f"segment_bytes must be positive, got {segment_bytes}")
        self.directory = directory
        self.segment_bytes = segment_bytes
        #: key -> newest location (later index lines win, so a
        #: re-stored key reads its latest payload).
        self.index: Dict[str, PackLocation] = {}
        #: Index entries dropped at load because they could not be
        #: trusted (torn line, truncated segment, missing segment).
        self.truncated = 0
        self._read_handles: Dict[str, io.BufferedReader] = {}
        self._append_handle: Optional[io.BufferedWriter] = None
        self._append_segment: Optional[str] = None
        self._load_index()

    # ----- index loading -----------------------------------------------------

    def _segment_sizes(self) -> Dict[str, int]:
        sizes: Dict[str, int] = {}
        try:
            names = os.listdir(self.directory)
        except OSError:
            return sizes
        for name in names:
            if SEGMENT_PATTERN.match(name):
                try:
                    sizes[name] = os.path.getsize(
                        os.path.join(self.directory, name))
                except OSError:
                    continue
        return sizes

    def _load_index(self) -> None:
        index_path = os.path.join(self.directory, INDEX_FILENAME)
        sizes = self._segment_sizes()
        try:
            with open(index_path, "r", encoding="utf-8") as handle:
                lines = handle.read().split("\n")
        except OSError:
            lines = []
        for line in lines:
            if not line:
                continue
            try:
                entry = json.loads(line)
                key = entry["k"]
                location = PackLocation(segment=entry["s"],
                                        offset=int(entry["o"]),
                                        length=int(entry["l"]))
            except (ValueError, KeyError, TypeError):
                # A torn index line (killed mid append).  Only the tail
                # can tear, but counting every bad line keeps the load
                # robust to hand-edited files too.
                self.truncated += 1
                continue
            size = sizes.get(location.segment)
            if size is None or location.offset + location.length > size:
                # The segment flush never completed (or the segment is
                # gone): the record is unreadable, so the key stays a
                # miss rather than serving torn bytes.
                self.truncated += 1
                continue
            self.index[key] = location

    # ----- reads -------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self.index

    def __len__(self) -> int:
        return len(self.index)

    def _reader(self, segment: str) -> io.BufferedReader:
        handle = self._read_handles.get(segment)
        if handle is None or handle.closed:
            handle = open(os.path.join(self.directory, segment), "rb")
            self._read_handles[segment] = handle
        return handle

    def lookup(self, key: str) -> Optional[dict]:
        """The payload stored for ``key``, or ``None``.

        A record that fails to read back (disappeared segment, torn
        bytes despite the load-time size check, malformed JSON) is
        dropped from the in-memory index and counted in ``truncated``;
        the caller treats it as a miss — no quarantine, no churn.
        """
        location = self.index.get(key)
        if location is None:
            return None
        record = self._read_record(location)
        if record is None or record.get("k") != key:
            del self.index[key]
            self.truncated += 1
            return None
        payload = record.get("p")
        return payload if isinstance(payload, dict) else None

    def _read_record(self, location: PackLocation) -> Optional[dict]:
        try:
            handle = self._reader(location.segment)
            handle.seek(location.offset)
            raw = handle.read(location.length)
        except OSError:
            return None
        if len(raw) != location.length or not raw.endswith(b"\n"):
            return None
        try:
            record = json.loads(raw)
        except ValueError:
            return None
        return record if isinstance(record, dict) else None

    # ----- appends -----------------------------------------------------------

    def _next_segment_seq(self) -> int:
        seqs = [int(m.group(1)) for m in
                (SEGMENT_PATTERN.match(n) for n in self._segment_sizes())
                if m]
        return max(seqs, default=0) + 1

    def _open_for_append(self) -> Tuple[io.BufferedWriter, str]:
        """The current append segment, rolling to a fresh one when the
        open segment crossed its size limit."""
        if self._append_handle is not None \
                and not self._append_handle.closed \
                and self._append_segment is not None:
            if self._append_handle.tell() < self.segment_bytes:
                return self._append_handle, self._append_segment
            self._append_handle.close()
            self._append_handle = None
        seq = self._next_segment_seq()
        name = segment_name(seq)
        path = os.path.join(self.directory, name)
        handle = open(path, "ab")
        self._append_handle = handle
        self._append_segment = name
        return handle, name

    def append_many(self, entries: Iterable[Tuple[str, dict]],
                    ) -> List[Tuple[str, int]]:
        """Append ``(key, payload)`` records as ONE segment flush.

        Every record is buffered into the open segment, then a single
        ``flush`` + ``fsync`` makes the whole batch durable, then the
        index lines are appended (and fsynced) — segment-first ordering
        is what makes a mid-flush kill detectable instead of corrupting.
        Returns ``(key, serialized-record-bytes)`` pairs so callers can
        charge the hot tier without re-encoding.
        """
        # Sort by key so the same set of stores produces byte-identical
        # segments regardless of batch-internal ordering (chunking and
        # family grouping must not change what lands on disk).
        entries = sorted(entries, key=lambda item: item[0])
        if not entries:
            return []
        handle, segment = self._open_for_append()
        offset = handle.tell()
        written: List[Tuple[str, PackLocation, int]] = []
        for key, payload in entries:
            line = json.dumps({"k": key, "p": payload},
                              separators=(",", ":")).encode("utf-8") + b"\n"
            handle.write(line)
            written.append((key, PackLocation(segment=segment,
                                              offset=offset,
                                              length=len(line)),
                            len(line)))
            offset += len(line)
        handle.flush()
        os.fsync(handle.fileno())
        index_path = os.path.join(self.directory, INDEX_FILENAME)
        with open(index_path, "ab") as index_handle:
            for key, location, _ in written:
                index_handle.write(json.dumps(
                    {"k": key, "s": location.segment,
                     "o": location.offset, "l": location.length},
                    separators=(",", ":")).encode("utf-8") + b"\n")
            index_handle.flush()
            os.fsync(index_handle.fileno())
        for key, location, _ in written:
            self.index[key] = location
        return [(key, nbytes) for key, _, nbytes in written]

    def close(self) -> None:
        """Close every open segment handle (reads and the appender)."""
        for handle in self._read_handles.values():
            if not handle.closed:
                handle.close()
        self._read_handles.clear()
        if self._append_handle is not None \
                and not self._append_handle.closed:
            self._append_handle.close()
        self._append_handle = None

    # ----- maintenance -------------------------------------------------------

    def scan(self) -> Iterator[Tuple[str, dict]]:
        """Yield every readable ``(key, payload)`` straight from the
        segments, newest record winning per key — the ground truth the
        index summarizes, used by compaction and index rebuilds."""
        latest: Dict[str, dict] = {}
        for name in sorted(self._segment_sizes()):
            path = os.path.join(self.directory, name)
            try:
                with open(path, "rb") as handle:
                    for raw in handle:
                        if not raw.endswith(b"\n"):
                            break  # torn tail: nothing after it is safe
                        try:
                            record = json.loads(raw)
                        except ValueError:
                            break
                        if not isinstance(record, dict):
                            break
                        key = record.get("k")
                        payload = record.get("p")
                        if isinstance(key, str) \
                                and isinstance(payload, dict):
                            latest[key] = payload
            except OSError:
                continue
        yield from latest.items()

    def verify(self) -> Dict[str, int]:
        """Re-read every indexed record; report (don't mutate) health.

        Returns counters: ``entries`` checked, ``ok``, ``corrupt``
        (indexed records that no longer read back cleanly), plus the
        ``truncated`` count accumulated since load.  ``repro cache
        verify`` renders this.
        """
        ok = 0
        corrupt = 0
        for key, location in list(self.index.items()):
            record = self._read_record(location)
            if record is None or record.get("k") != key \
                    or not isinstance(record.get("p"), dict):
                corrupt += 1
            else:
                ok += 1
        return {"entries": len(self.index), "ok": ok,
                "corrupt": corrupt, "truncated": self.truncated}

    def info(self) -> dict:
        """JSON-serializable snapshot (manifests, ``repro cache stats``)."""
        sizes = self._segment_sizes()
        return {
            "segments": len(sizes),
            "entries": len(self.index),
            "bytes": sum(sizes.values()),
            "truncated": self.truncated,
        }
