"""Figure 10: the encode/decode budget available to any compressor.

The gap between optimized syncSGD and ideal (communication-free) weak
scaling is the *entire* time window a compression scheme has to encode,
communicate and decode in.  The paper's observation, asserted by the
benchmark: the gap is small — ~50 ms for ResNet-50, ~100 ms for
ResNet-101, ~200 ms for BERT at 10 Gbit/s even at ~150 machines — while
measured encode/decode times (Table 2) already exceed it for most
methods.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from ..core import headroom_curve
from ..models import get_model
from ..units import gbps_to_bytes_per_s
from .runner import ExperimentResult

#: Machine counts the figure sweeps (the paper goes to ~150).
FIG10_WORLD_SIZES: Tuple[int, ...] = (8, 16, 32, 64, 96, 128, 152)

#: (model, batch) pairs shown.
FIG10_WORKLOADS: Tuple[Tuple[str, int], ...] = (
    ("resnet50", 64),
    ("resnet101", 64),
    ("bert-base", 12),
)


def run_fig10(bandwidth_gbps: float = 10.0,
              world_sizes: Sequence[int] = FIG10_WORLD_SIZES,
              workloads: Sequence[Tuple[str, int]] = FIG10_WORKLOADS,
              ) -> ExperimentResult:
    """Ideal-vs-syncSGD gap across scale for the paper's workloads."""
    rows: List[Dict[str, Any]] = []
    for model_name, batch_size in workloads:
        model = get_model(model_name)
        points = headroom_curve(
            model, world_sizes, gbps_to_bytes_per_s(bandwidth_gbps),
            batch_size=batch_size)
        for point in points:
            rows.append({
                "model": model_name,
                "batch_size": batch_size,
                "gpus": point.world_size,
                "ideal_ms": point.ideal_s * 1e3,
                "syncsgd_ms": point.syncsgd_s * 1e3,
                "headroom_ms": point.headroom_s * 1e3,
            })
    return ExperimentResult(
        experiment_id="fig10",
        title=(f"Gap between syncSGD and ideal scaling at "
               f"{bandwidth_gbps:g} Gbit/s"),
        columns=("model", "batch_size", "gpus", "ideal_ms", "syncsgd_ms",
                 "headroom_ms"),
        rows=tuple(rows),
    )
