"""Hardware catalog: GPUs, cloud instances, and cluster configurations."""

from .cluster import ClusterConfig, cluster_for_gpus, gpu_scaling_sweep
from .gpus import A100, P100, T4, V100, GPUSpec, available_gpus, get_gpu
from .instances import (
    P3_2XLARGE,
    P3_8XLARGE,
    P3DN_24XLARGE,
    P4D_24XLARGE,
    InstanceType,
    available_instances,
    get_instance,
)

__all__ = [
    "GPUSpec", "V100", "A100", "T4", "P100", "get_gpu", "available_gpus",
    "InstanceType", "P3_2XLARGE", "P3_8XLARGE", "P3DN_24XLARGE",
    "P4D_24XLARGE", "get_instance", "available_instances",
    "ClusterConfig", "cluster_for_gpus", "gpu_scaling_sweep",
]
