#!/usr/bin/env python
"""Lint the documentation for dead links and phantom CLI invocations.

Three checks over ``README.md`` and every ``docs/*.md`` page (wired
into ``make lint`` and the CI lint job):

1. **Relative links resolve** — every ``[text](target)`` markdown link
   whose target is not an absolute URL must point at an existing file
   (fragments are stripped before checking).
2. **Cross-references resolve** — every bare ``docs/<page>.md`` mention
   in prose or code must name a file that exists, so renaming a page
   cannot silently orphan the text that cites it.
3. **CLI invocations are real** — every ``repro ...`` command quoted in
   inline code or fenced blocks is validated against the actual
   :func:`repro.cli.build_parser` tree: the subcommand must exist and
   every ``--flag`` must be one the subcommand (or the top-level
   parser) accepts.  Docs describing flags that were renamed or never
   shipped fail the build instead of misleading readers.

Exits non-zero with one problem per line on stderr.
"""

from __future__ import annotations

import argparse
import glob
import os
import re
import sys
from typing import Dict, List, Optional, Set, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.cli import build_parser  # noqa: E402

#: Markdown ``[text](target)`` links; images share the syntax.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Bare cross-references to documentation pages.
DOC_REF_RE = re.compile(r"docs/[A-Za-z0-9_.-]+\.md")

#: A quoted CLI invocation, in inline code or a fenced block.
CLI_RE = re.compile(r"(?:python -m )?\brepro\s+(?:-|[a-z])[^`\n]*")

#: Tokens that end a shell command mid-line.
SHELL_BREAKERS = ("|", ">", ">>", "<", "&&", "||", ";", "#", "&", "2>")

#: Placeholder tokens docs legitimately use instead of real values.
PLACEHOLDER_RE = re.compile(r"^(\.\.\.|<[^>]*>|[A-Z][A-Z0-9_.]*|\$\w+)$")


def doc_files() -> List[str]:
    """README plus every docs page, repo-relative."""
    pages = sorted(glob.glob(os.path.join(REPO_ROOT, "docs", "*.md")))
    return [os.path.join(REPO_ROOT, "README.md"), *pages]


def check_links(path: str, text: str) -> List[str]:
    """Dead relative links in one file."""
    problems = []
    base = os.path.dirname(path)
    for i, line in enumerate(text.splitlines(), 1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue  # same-page anchor
            resolved = os.path.normpath(os.path.join(base, target))
            if not os.path.exists(resolved):
                problems.append(f"{os.path.relpath(path, REPO_ROOT)}:{i}: "
                                f"dead link {match.group(1)!r}")
    return problems


def check_doc_refs(path: str, text: str) -> List[str]:
    """Bare ``docs/*.md`` mentions that point at nothing."""
    problems = []
    for i, line in enumerate(text.splitlines(), 1):
        for ref in DOC_REF_RE.findall(line):
            if not os.path.exists(os.path.join(REPO_ROOT, ref)):
                problems.append(f"{os.path.relpath(path, REPO_ROOT)}:{i}: "
                                f"missing cross-reference {ref!r}")
    return problems


def _parser_surface() -> Tuple[Set[str], Dict[str, Dict[str, bool]],
                               Dict[str, Set[str]]]:
    """Introspect the real CLI: global flags, per-subcommand flags (with
    whether each consumes a value), and positional choice sets."""
    parser = build_parser()
    sub_action = next(a for a in parser._actions
                      if isinstance(a, argparse._SubParsersAction))
    global_flags: Set[str] = set()
    for action in parser._actions:
        global_flags.update(action.option_strings)

    flags: Dict[str, Dict[str, bool]] = {}
    choices: Dict[str, Set[str]] = {}
    for name, sub in sub_action.choices.items():
        per: Dict[str, bool] = {}
        for action in sub._actions:
            takes_value = action.nargs != 0
            for opt in action.option_strings:
                per[opt] = takes_value
            if not action.option_strings and action.choices:
                choices.setdefault(name, set()).update(
                    str(c) for c in action.choices)
        flags[name] = per
    return global_flags, flags, choices


def _tokenize(command: str) -> List[str]:
    tokens = []
    for token in command.replace("\\", " ").split():
        stripped = token.strip("`'\",.)")
        if not stripped:
            continue
        if stripped in SHELL_BREAKERS or stripped[0] in "|&;#":
            break
        tokens.append(stripped)
    return tokens


def check_cli_invocations(path: str, text: str) -> List[str]:
    """Quoted ``repro ...`` commands that the real CLI would reject."""
    global_flags, sub_flags, sub_choices = _parser_surface()
    problems = []
    where = os.path.relpath(path, REPO_ROOT)

    # Join fenced-block continuation lines so multi-line commands parse
    # as one; then scan every line for invocations.
    joined = re.sub(r"\\\n\s*", " ", text)
    for i, line in enumerate(joined.splitlines(), 1):
        for match in CLI_RE.finditer(line):
            tokens = _tokenize(match.group(0))
            if tokens[:3] == ["python", "-m", "repro"]:
                tokens = tokens[3:]
            elif tokens[0] == "repro":
                tokens = tokens[1:]
            problems.extend(f"{where}:{i}: {p}"
                            for p in _check_tokens(
                                tokens, global_flags, sub_flags,
                                sub_choices))
    return problems


def _check_tokens(tokens: List[str], global_flags: Set[str],
                  sub_flags: Dict[str, Dict[str, bool]],
                  sub_choices: Dict[str, Set[str]]) -> List[str]:
    """Problems with one tokenized invocation (after the prog name)."""
    # Leading global flags (e.g. --log-level debug) before the command.
    index = 0
    while index < len(tokens) and tokens[index].startswith("-"):
        flag = tokens[index].split("=", 1)[0]
        if flag not in global_flags:
            return [f"unknown global flag {flag!r}"]
        if flag in ("--log-level",) and "=" not in tokens[index]:
            index += 1
        index += 1
    if index >= len(tokens):
        return []  # bare `repro --version` style
    command = tokens[index]
    if command not in sub_flags:
        return [f"unknown subcommand {command!r} "
                f"(have: {', '.join(sorted(sub_flags))})"]
    allowed = dict(sub_flags[command])
    for opt in global_flags:
        allowed.setdefault(opt, opt == "--log-level")
    problems = []
    positionals = 0
    index += 1
    while index < len(tokens):
        token = tokens[index]
        if token.startswith("-") and not token.lstrip("-").isdigit():
            flag = token.split("=", 1)[0]
            if flag not in allowed:
                problems.append(
                    f"`repro {command}` has no flag {flag!r}")
            elif allowed[flag] and "=" not in token:
                index += 1  # skip the flag's value
        else:
            positionals += 1
            if positionals == 1 and command in sub_choices \
                    and not PLACEHOLDER_RE.match(token) \
                    and token not in sub_choices[command]:
                problems.append(
                    f"`repro {command}` has no positional {token!r}")
        index += 1
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns 0 when the docs check out."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*",
                        help="markdown files to check (default: README "
                             "+ docs/*.md)")
    args = parser.parse_args(argv)
    files = args.files or doc_files()

    problems: List[str] = []
    for path in files:
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            problems.append(f"{path}: unreadable: {exc}")
            continue
        problems += check_links(path, text)
        problems += check_doc_refs(path, text)
        problems += check_cli_invocations(path, text)
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"docs ok: {len(files)} file(s), links + cross-references "
              f"+ CLI invocations verified")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
