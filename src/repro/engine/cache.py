"""Content-addressed on-disk cache of simulation results.

One JSON file per cache key under the cache directory.  An entry stores
either a full :class:`~repro.simulator.TimingResult` or the
:class:`~repro.errors.OutOfMemoryError` the simulation deterministically
raises — OOM is as reproducible as a timing, and re-simulating 110
iterations just to re-discover it would defeat the cache.

The cache never trusts its files blindly: a payload that fails to parse
or misses required fields counts as a miss, and the offending file is
*quarantined* — moved aside into ``<directory>/quarantine/`` rather
than silently overwritten — so a truncated write (killed process)
cannot poison later sweeps and the evidence survives for debugging.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Optional, Union

from ..core.perf_model import PredictedTime
from ..errors import ConfigurationError, OutOfMemoryError
from ..simulator import TimingResult
from ..telemetry.logs import get_logger
from ..telemetry.metrics import get_registry
from ..telemetry.tracing import get_tracer

#: What a cache lookup can yield: a simulated result, the deterministic
#: OOM, or a closed-form model prediction (``ModelEvalJob`` entries).
CachedOutcome = Union[TimingResult, OutOfMemoryError, PredictedTime]


@dataclass
class CacheStats:
    """Hit/miss counters, exposed on the CLI after every sweep."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    quarantined: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups (hits plus misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when never used)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        """An independent copy of the current counter values."""
        return CacheStats(hits=self.hits, misses=self.misses,
                          stores=self.stores,
                          quarantined=self.quarantined)

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """Counter deltas relative to an earlier :meth:`snapshot`."""
        return CacheStats(hits=self.hits - earlier.hits,
                          misses=self.misses - earlier.misses,
                          stores=self.stores - earlier.stores,
                          quarantined=self.quarantined - earlier.quarantined)

    def describe(self) -> str:
        """One-line human rendering; mentions quarantines only when
        any happened, so healthy output is unchanged."""
        text = (f"{self.hits} hits / {self.misses} misses "
                f"({self.hit_rate:.0%} hit rate)")
        if self.quarantined:
            text += f", {self.quarantined} quarantined"
        return text


def result_to_payload(result: TimingResult) -> dict:
    """JSON-serializable form of a timing result cache entry."""
    return {
        "kind": "result",
        "model": result.model,
        "scheme": result.scheme,
        "world_size": result.world_size,
        "batch_size": result.batch_size,
        "sync_times": list(result.sync_times),
        "iteration_times": list(result.iteration_times),
    }


def payload_to_result(payload: dict) -> TimingResult:
    """Inverse of :func:`result_to_payload`."""
    return TimingResult(
        model=payload["model"],
        scheme=payload["scheme"],
        world_size=payload["world_size"],
        batch_size=payload["batch_size"],
        sync_times=tuple(payload["sync_times"]),
        iteration_times=tuple(payload["iteration_times"]),
    )


def oom_to_payload(error: OutOfMemoryError) -> dict:
    """JSON-serializable form of a deterministic-OOM cache entry."""
    return {
        "kind": "oom",
        "message": str(error),
        "required_bytes": error.required_bytes,
        "budget_bytes": error.budget_bytes,
    }


def payload_to_oom(payload: dict) -> OutOfMemoryError:
    """Inverse of :func:`oom_to_payload`."""
    return OutOfMemoryError(
        payload["message"],
        required_bytes=payload["required_bytes"],
        budget_bytes=payload["budget_bytes"],
    )


def predicted_to_payload(predicted: PredictedTime) -> dict:
    """JSON-serializable form of a model-prediction cache entry.

    Floats survive the JSON round trip exactly (``repr`` rendering), so
    a warm-cache sweep reproduces its cold run byte for byte.
    """
    return {
        "kind": "predicted",
        "total": predicted.total,
        "compute": predicted.compute,
        "encode_decode": predicted.encode_decode,
        "comm_exposed": predicted.comm_exposed,
    }


def payload_to_predicted(payload: dict) -> PredictedTime:
    """Inverse of :func:`predicted_to_payload`."""
    return PredictedTime(
        total=payload["total"],
        compute=payload["compute"],
        encode_decode=payload["encode_decode"],
        comm_exposed=payload["comm_exposed"],
    )


class SimulationCache:
    """Maps fingerprint keys to simulation outcomes, one file per key."""

    def __init__(self, directory: str):
        """Open (creating if needed) the cache at ``directory``."""
        if not directory:
            raise ConfigurationError("cache directory must be non-empty")
        self.directory = directory
        try:
            os.makedirs(directory, exist_ok=True)
        except OSError as exc:
            raise ConfigurationError(
                f"cannot use {directory!r} as a cache directory: {exc}")
        self.stats = CacheStats()

    def path_for(self, key: str) -> str:
        """Filesystem path of ``key``'s entry (whether or not it exists)."""
        return os.path.join(self.directory, f"{key}.json")

    def get(self, key: str) -> Optional[CachedOutcome]:
        """Look up ``key``; counts a hit or a miss on the stats.

        An absent entry is a plain miss.  A *present but unreadable*
        entry (truncated JSON, unknown kind, missing fields) is also a
        miss, but the file is moved into the ``quarantine/``
        subdirectory first so the corrupt bytes are preserved for
        inspection instead of being silently overwritten by the
        re-simulated result.
        """
        try:
            with open(self.path_for(key), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("kind") == "result":
                outcome: CachedOutcome = payload_to_result(payload)
            elif payload.get("kind") == "oom":
                outcome = payload_to_oom(payload)
            elif payload.get("kind") == "predicted":
                outcome = payload_to_predicted(payload)
            else:
                raise KeyError(payload.get("kind"))
        except FileNotFoundError:
            self.stats.misses += 1
            get_registry().counter("cache_misses_total").inc()
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            self._quarantine(key, exc)
            self.stats.misses += 1
            get_registry().counter("cache_misses_total").inc()
            return None
        self.stats.hits += 1
        get_registry().counter("cache_hits_total").inc()
        return outcome

    def _quarantine(self, key: str, exc: Exception) -> None:
        """Move ``key``'s corrupt file aside and count the event."""
        source = self.path_for(key)
        quarantine_dir = os.path.join(self.directory, "quarantine")
        with get_tracer().span("cache-quarantine", track="cache",
                               key=key, reason=type(exc).__name__):
            try:
                os.makedirs(quarantine_dir, exist_ok=True)
                os.replace(source,
                           os.path.join(quarantine_dir, f"{key}.json"))
            except OSError:
                # A racing process beat us to it (or the FS is
                # read-only); either way the lookup already counted as
                # a miss.
                return
        self.stats.quarantined += 1
        get_registry().counter("cache_quarantined_total").inc()
        get_logger("cache").warning(
            "cache.entry_quarantined", key=key,
            reason=f"{type(exc).__name__}: {exc}",
            moved_to=quarantine_dir)

    def put(self, key: str, outcome: CachedOutcome) -> None:
        """Store ``outcome`` under ``key`` atomically (write + rename),
        so a killed process can never leave a half-written entry."""
        if isinstance(outcome, TimingResult):
            payload = result_to_payload(outcome)
        elif isinstance(outcome, PredictedTime):
            payload = predicted_to_payload(outcome)
        else:
            payload = oom_to_payload(outcome)
        fd, tmp_path = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_path, self.path_for(key))
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
        self.stats.stores += 1
        get_registry().counter("cache_stores_total").inc()

    def __contains__(self, key: str) -> bool:
        """Membership probe that does not disturb the stats."""
        return os.path.exists(self.path_for(key))

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.directory)
                   if name.endswith(".json"))
