"""Blocked-time analysis of simulated iterations.

The paper's methodology descends from Ousterhout et al.'s blocked-time
analysis [43]: instead of asking "how much time does resource X use?",
ask "how much faster would the job be if X were free?".  This module
answers both for a simulated iteration:

* :func:`time_breakdown` — wall-clock attribution per phase (forward,
  backward, encode/decode, exposed communication, optimizer, idle);
* :func:`blocked_time_analysis` — counterfactual re-simulation with one
  resource made free (infinite bandwidth, zero encode cost, infinitely
  fast compute), reporting the speedup each would unlock.

The counterfactuals use the same simulator configuration with one knob
idealized, so they account for overlap correctly — making communication
free does *not* save the time that was already hidden under the backward
pass, which is precisely the paper's point about limited opportunity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..compression.schemes import Scheme
from ..errors import ConfigurationError
from ..hardware import ClusterConfig
from ..models import ModelSpec
from ..network import Fabric
from ..simulator import COMM_STREAM, COMPUTE_STREAM, DDPConfig, DDPSimulator
from ..simulator.trace import IterationTrace


@dataclass(frozen=True)
class TimeBreakdown:
    """Wall-clock attribution for one iteration (seconds)."""

    forward: float
    backward: float
    encode_decode: float
    comm_exposed: float
    comm_hidden: float
    optimizer: float
    total: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "forward": self.forward,
            "backward": self.backward,
            "encode_decode": self.encode_decode,
            "comm_exposed": self.comm_exposed,
            "comm_hidden": self.comm_hidden,
            "optimizer": self.optimizer,
        }

    def render(self) -> str:
        lines = [f"iteration total: {self.total * 1e3:.1f} ms"]
        for name, value in self.as_dict().items():
            share = value / self.total if self.total > 0 else 0.0
            lines.append(f"  {name:<14} {value * 1e3:7.1f} ms  "
                         f"{share:6.1%}  |{'#' * int(share * 40)}")
        return "\n".join(lines)


def time_breakdown(trace: IterationTrace) -> TimeBreakdown:
    """Attribute one simulated iteration's wall clock to phases.

    Communication is split into the part hidden under compute-stream
    activity and the part that extends the iteration (*exposed*).
    """
    if not trace.spans:
        raise ConfigurationError("trace has no spans")
    by_label: Dict[str, float] = {}
    for span in trace.spans:
        if span.stream == COMPUTE_STREAM:
            key = span.label.split("+")[0]
            if span.label == "backward+encode":
                key = "backward"
            by_label[key] = by_label.get(key, 0.0) + span.duration
    comm_total = trace.stream_busy_time(COMM_STREAM)
    comm_hidden = min(comm_total, trace.compute_comm_overlap())
    comm_exposed = comm_total - comm_hidden

    encode = (by_label.get("encode", 0.0) + by_label.get("decode", 0.0)
              + by_label.get("bucket-cast", 0.0))
    return TimeBreakdown(
        forward=by_label.get("forward", 0.0),
        backward=by_label.get("backward", 0.0),
        encode_decode=encode,
        comm_exposed=comm_exposed,
        comm_hidden=comm_hidden,
        optimizer=by_label.get("optimizer", 0.0),
        total=trace.iteration_end,
    )


@dataclass(frozen=True)
class BlockedTimeReport:
    """Counterfactual speedups: iteration time if a resource were free."""

    baseline_s: float
    free_network_s: float
    free_encode_s: float
    fast_compute_s: float

    def speedup_if(self, what: str) -> float:
        """Fractional iteration-time reduction for one counterfactual
        (``"network"``, ``"encode"`` or ``"compute"``)."""
        mapping = {"network": self.free_network_s,
                   "encode": self.free_encode_s,
                   "compute": self.fast_compute_s}
        if what not in mapping:
            raise ConfigurationError(
                f"unknown counterfactual {what!r}; "
                f"choose from {sorted(mapping)}")
        return (self.baseline_s - mapping[what]) / self.baseline_s

    def dominant_bottleneck(self) -> str:
        """The resource whose removal helps most."""
        return max(("network", "encode", "compute"), key=self.speedup_if)

    def render(self) -> str:
        lines = [f"baseline iteration: {self.baseline_s * 1e3:.1f} ms"]
        for what in ("network", "encode", "compute"):
            lines.append(
                f"  if {what:<8} were free: "
                f"{self.speedup_if(what):+6.1%}")
        lines.append(f"  dominant bottleneck: {self.dominant_bottleneck()}")
        return "\n".join(lines)


def blocked_time_analysis(model: ModelSpec, cluster: ClusterConfig,
                          scheme: Optional[Scheme] = None,
                          batch_size: Optional[int] = None,
                          config: Optional[DDPConfig] = None,
                          ) -> BlockedTimeReport:
    """Re-simulate with each resource idealized in turn.

    * free network: a fabric with effectively infinite bandwidth and
      zero latency;
    * free encode: a kernel profile scaled ~infinitely fast (compression
      math costs nothing; wire bytes unchanged);
    * fast compute: a GPU 1000x faster (encode scales with it too, as in
      the paper's Figure 12 convention).
    """
    base_cfg = config if config is not None else DDPConfig(
        compute_jitter=0.0, comm_jitter=0.0)
    bs = batch_size if batch_size is not None else model.default_batch_size
    rng = np.random.default_rng(0)

    def iteration(sim: DDPSimulator) -> float:
        return sim.simulate_iteration(bs, rng).iteration_end

    baseline = iteration(DDPSimulator(model, cluster, scheme=scheme,
                                      config=base_cfg))

    fast_fabric = Fabric(cluster, alpha_s=0.0, bandwidth_jitter=0.0,
                         incast_per_sender=0.0)
    fast_fabric._pair_bw = fast_fabric._pair_bw * 1e6  # effectively free
    free_network = iteration(DDPSimulator(
        model, cluster, scheme=scheme, fabric=fast_fabric,
        config=base_cfg))

    from ..compression.kernel_cost import v100_kernel_profile
    free_profile = v100_kernel_profile().scaled(1e6)
    no_hook = DDPConfig(
        bucket_cap_bytes=base_cfg.bucket_cap_bytes,
        overlap_communication=base_cfg.overlap_communication,
        gamma=base_cfg.gamma,
        overlap_compression=base_cfg.overlap_compression,
        contention_penalty=base_cfg.contention_penalty,
        allreduce_algorithm=base_cfg.allreduce_algorithm,
        hook_overhead_per_layer_s=0.0,
        compute_jitter=0.0, comm_jitter=0.0,
        check_memory=base_cfg.check_memory)
    free_encode = iteration(DDPSimulator(
        model, cluster, scheme=scheme, kernel_profile=free_profile,
        config=no_hook))

    fast_cluster = cluster.with_instance(
        cluster.instance.with_gpu(cluster.gpu.scaled(1000.0)))
    fast_profile = v100_kernel_profile().scaled(1000.0)
    fast_compute = iteration(DDPSimulator(
        model, fast_cluster, scheme=scheme, kernel_profile=fast_profile,
        config=base_cfg))

    return BlockedTimeReport(
        baseline_s=baseline,
        free_network_s=free_network,
        free_encode_s=free_encode,
        fast_compute_s=fast_compute,
    )
