"""Reliability exhibit: how faults reshape the compression trade-off.

The paper evaluates gradient compression on *healthy* clusters; this
exhibit asks what a realistic failure does to that comparison.  Two
fault kinds, injected via :mod:`repro.faults`:

* ``nic-straggler`` — node 0's NIC drops to a quarter of its
  bandwidth (a flaky cable, a congested ToR port).  Ring collectives
  run at the pairwise *minimum* bandwidth, so one bad NIC drags every
  worker.  Dense allreduce ships ~100x the bytes of PowerSGD rank-4,
  so the same bandwidth cut costs syncSGD far more wall-clock — but
  only while the network is the bottleneck.  Above a threshold
  bandwidth even the degraded NIC is fast enough that the penalty gap
  closes: compression's robustness edge, like its speed edge, is a
  low-bandwidth phenomenon.
* ``compute-straggler`` — worker 0 computes at half speed (thermal
  throttling, a noisy neighbour).  Lockstep training runs at the
  straggler's pace, and the *comm-heavy* baseline actually hides more
  of the slowdown under synchronization — the ordering flips, which
  is the control that shows the NIC result is about bytes on the
  wire, not about faults generically.

Per fault x scheme x bandwidth the exhibit reports the *penalty*
(faulted mean iteration time / fault-free mean); the notes quote the
bandwidth thresholds located by
:func:`repro.reporting.reliability_findings`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..compression.schemes import (
    PowerSGDScheme,
    Scheme,
    SignSGDScheme,
    SyncSGDScheme,
    TopKScheme,
)
from ..engine import ExperimentEngine, SimJob
from ..faults import FaultSchedule, NodeFault, StragglerFault
from ..hardware import P3_8XLARGE, cluster_for_gpus
from ..models import get_model
from ..reporting import reliability_findings
from ..telemetry.metrics import get_registry
from .runner import ExperimentResult

#: NIC bandwidths swept (Gbit/s): from scarce to plentiful, bracketing
#: the paper's 10 Gbit/s testbed and extending far enough that the
#: NIC fault's penalty gap demonstrably closes.
RELIABILITY_BANDWIDTHS: Tuple[float, ...] = (2.0, 5.0, 10.0, 25.0, 50.0,
                                             100.0)

#: Factor the degraded node's NIC keeps (1/4 of nominal).
NIC_FAULT_FACTOR = 0.25

#: Compute stretch of the slow worker (2x slower).
COMPUTE_FAULT_SLOWDOWN = 2.0


def reliability_schemes() -> List[Scheme]:
    """The scheme panel: dense baseline plus the paper's three
    compression families (low-rank, sparsification, quantization)."""
    return [SyncSGDScheme(), PowerSGDScheme(rank=4),
            TopKScheme(fraction=0.01), SignSGDScheme()]


def _fault_schedules(seed: int) -> Dict[str, FaultSchedule]:
    """The two injected failure modes, keyed by row label."""
    return {
        "nic-straggler": FaultSchedule(
            seed=seed,
            nodes=(NodeFault(node=0, factor=NIC_FAULT_FACTOR),)),
        "compute-straggler": FaultSchedule(
            seed=seed,
            stragglers=(StragglerFault(worker=0,
                                       slowdown=COMPUTE_FAULT_SLOWDOWN),)),
    }


def run_reliability(num_gpus: int = 32, batch_size: int = 64,
                    bandwidths_gbps: Sequence[float] = RELIABILITY_BANDWIDTHS,
                    iterations: int = 30, warmup: int = 5, seed: int = 0,
                    engine: Optional[ExperimentEngine] = None,
                    ) -> ExperimentResult:
    """Fault-penalty study of ResNet-50 DDP across the scheme panel.

    For every bandwidth and scheme, simulates a fault-free run and one
    run per fault kind, all through the (optional) engine so the sweep
    caches, parallelizes, and survives worker failures like any other
    exhibit.  Rows carry the clean and faulted mean iteration times
    (ms) and their ratio; degraded rows (engine gave up) carry NaN.
    """
    eng = engine if engine is not None else ExperimentEngine()
    model = get_model("resnet50")
    schemes = reliability_schemes()
    schedules = _fault_schedules(seed)

    clean_jobs: List[SimJob] = []
    faulted_jobs: List[Tuple[str, SimJob]] = []
    for gbps in bandwidths_gbps:
        cluster = cluster_for_gpus(
            num_gpus, instance=P3_8XLARGE.with_network_gbps(gbps))
        for scheme in schemes:
            base = SimJob(model=model, cluster=cluster, scheme=scheme,
                          batch_size=batch_size, iterations=iterations,
                          warmup=warmup, seed=seed)
            clean_jobs.append(base)
            for fault_name, schedule in schedules.items():
                faulted_jobs.append(
                    (fault_name,
                     SimJob(model=model, cluster=cluster, scheme=scheme,
                            batch_size=batch_size, iterations=iterations,
                            warmup=warmup, seed=seed, faults=schedule)))

    outcomes = eng.run_outcomes(
        clean_jobs + [job for _, job in faulted_jobs])
    clean_outcomes = outcomes[:len(clean_jobs)]
    fault_outcomes = outcomes[len(clean_jobs):]

    def mean_ms(outcome) -> float:
        """Mean iteration time in ms, NaN for degraded/OOM rows."""
        if outcome.failed or outcome.oom is not None:
            return float("nan")
        return outcome.unwrap().mean_iteration * 1e3

    clean_ms: Dict[Tuple[float, str], float] = {}
    for job, outcome in zip(clean_jobs, clean_outcomes):
        gbps = job.cluster.instance.network_bytes_per_s * 8 / 1e9
        label = job.scheme.label if job.scheme else "syncsgd"
        clean_ms[(gbps, label)] = mean_ms(outcome)

    rows: List[Dict[str, Any]] = []
    notes: List[str] = []
    for (fault_name, job), outcome in zip(faulted_jobs, fault_outcomes):
        gbps = job.cluster.instance.network_bytes_per_s * 8 / 1e9
        label = job.scheme.label if job.scheme else "syncsgd"
        clean = clean_ms[(gbps, label)]
        faulted = mean_ms(outcome)
        rows.append({
            "fault": fault_name,
            "scheme": label,
            "gbps": gbps,
            "clean_ms": clean,
            "faulted_ms": faulted,
            "penalty": faulted / clean,
        })
        if outcome.failed:
            notes.append(f"failed: {fault_name}/{label} at {gbps:g} "
                         f"Gbit/s: {outcome.error}")

    # Normalise scheme labels for the threshold analysis; syncsgd is
    # the baseline, everything else is a candidate.
    candidate_labels = [s.label for s in schemes
                        if s.label != "syncsgd"]
    for fault_name in schedules:
        notes.extend(reliability_findings(rows, fault_name,
                                          candidate_labels))

    registry = get_registry()
    if registry.enabled:
        registry.counter("experiment_rows_total",
                         experiment_id="reliability").inc(len(rows))

    return ExperimentResult(
        experiment_id="reliability",
        title=(f"Fault penalty by scheme and bandwidth (resnet50, "
               f"{num_gpus} GPUs, NIC x{NIC_FAULT_FACTOR:g} / compute "
               f"x{COMPUTE_FAULT_SLOWDOWN:g} faults)"),
        columns=("fault", "scheme", "gbps", "clean_ms", "faulted_ms",
                 "penalty"),
        rows=tuple(rows),
        notes=tuple(notes),
    )
