"""Network fabric and iperf-style probing."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hardware import ClusterConfig
from repro.network import (
    BandwidthReport,
    Fabric,
    estimate_alpha,
    measure_cluster,
    measure_pair,
)


@pytest.fixture
def fabric():
    return Fabric(ClusterConfig(num_nodes=4, seed=7))


class TestFabricBandwidth:
    def test_pairwise_at_most_nominal(self, fabric):
        nominal = fabric.nominal_bandwidth()
        for a in range(4):
            for b in range(4):
                if a != b:
                    assert fabric.pair_bandwidth(a, b) <= nominal

    def test_symmetric(self, fabric):
        assert fabric.pair_bandwidth(1, 3) == fabric.pair_bandwidth(3, 1)

    def test_intra_node_uses_nvlink(self, fabric):
        assert fabric.pair_bandwidth(2, 2) > fabric.nominal_bandwidth()

    def test_min_bandwidth_is_pairwise_min(self, fabric):
        pairs = [fabric.pair_bandwidth(a, b)
                 for a in range(4) for b in range(4) if a != b]
        assert fabric.min_bandwidth() == pytest.approx(min(pairs))

    def test_deterministic_per_seed(self):
        f1 = Fabric(ClusterConfig(num_nodes=4, seed=3))
        f2 = Fabric(ClusterConfig(num_nodes=4, seed=3))
        assert f1.min_bandwidth() == f2.min_bandwidth()

    def test_different_seeds_differ(self):
        f1 = Fabric(ClusterConfig(num_nodes=6, seed=0))
        f2 = Fabric(ClusterConfig(num_nodes=6, seed=1))
        assert f1.min_bandwidth() != f2.min_bandwidth()

    def test_zero_jitter_means_nominal(self):
        fabric = Fabric(ClusterConfig(num_nodes=4), bandwidth_jitter=0.0)
        assert fabric.min_bandwidth() == fabric.nominal_bandwidth()

    def test_single_node_min_is_nvlink(self):
        fabric = Fabric(ClusterConfig(num_nodes=1))
        assert fabric.min_bandwidth() == (
            fabric.cluster.instance.intra_node_bytes_per_s)

    def test_node_out_of_range(self, fabric):
        with pytest.raises(ConfigurationError):
            fabric.pair_bandwidth(0, 9)


class TestTransferPricing:
    def test_alpha_plus_beta(self, fabric):
        t = fabric.transfer_time(1e6, 0, 1)
        assert t == pytest.approx(
            fabric.alpha_s + 1e6 / fabric.pair_bandwidth(0, 1))

    def test_intra_node_has_no_alpha(self, fabric):
        t = fabric.transfer_time(0.0, 1, 1)
        assert t == 0.0

    def test_negative_bytes_rejected(self, fabric):
        with pytest.raises(ConfigurationError):
            fabric.transfer_time(-1, 0, 1)

    def test_incast_grows_with_fanin(self, fabric):
        assert fabric.incast_factor(1) == 1.0
        assert fabric.incast_factor(95) > fabric.incast_factor(15) > 1.0

    def test_incast_fanin_validated(self, fabric):
        with pytest.raises(ConfigurationError):
            fabric.incast_factor(0)

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            Fabric(ClusterConfig(num_nodes=2), alpha_s=-1.0)
        with pytest.raises(ConfigurationError):
            Fabric(ClusterConfig(num_nodes=2), incast_per_sender=-0.1)


class TestIperfProbe:
    def test_measured_below_link_rate(self, fabric):
        # The alpha term biases a finite probe slightly low.
        measured = measure_pair(fabric, 0, 1)
        assert measured < fabric.pair_bandwidth(0, 1)
        assert measured == pytest.approx(fabric.pair_bandwidth(0, 1),
                                         rel=0.01)

    def test_self_probe_rejected(self, fabric):
        with pytest.raises(ConfigurationError):
            measure_pair(fabric, 2, 2)

    def test_cluster_report_shape(self, fabric):
        report = measure_cluster(fabric)
        assert isinstance(report, BandwidthReport)
        assert report.matrix.shape == (4, 4)
        assert np.isnan(report.matrix[0, 0])
        assert report.num_nodes == 4

    def test_report_min_matches_matrix(self, fabric):
        report = measure_cluster(fabric)
        assert report.min_bandwidth == pytest.approx(
            np.nanmin(report.matrix))

    def test_single_node_report(self):
        report = measure_cluster(Fabric(ClusterConfig(num_nodes=1)))
        assert report.min_bandwidth > 0

    def test_alpha_estimate_close_to_true(self, fabric):
        est = estimate_alpha(fabric)
        assert est == pytest.approx(fabric.alpha_s, rel=0.05)

    def test_alpha_single_worker(self):
        fabric = Fabric(ClusterConfig(num_nodes=1))
        assert estimate_alpha(fabric, num_gpus=1) == fabric.alpha_s
