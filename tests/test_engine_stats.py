"""Engine statistics and the telemetry recorded across the stack."""

import json

import numpy as np
import pytest

from repro.collectives import allgather_time, ring_allreduce_time
from repro.engine import EngineStats, ExperimentEngine, SimJob, SimulationCache
from repro.errors import OutOfMemoryError
from repro.hardware import cluster_for_gpus
from repro.models import get_model
from repro.simulator import DDPConfig, DDPSimulator
from repro.telemetry import metrics as telemetry_metrics


@pytest.fixture(autouse=True)
def _isolate_registry():
    previous = telemetry_metrics.get_registry()
    yield
    telemetry_metrics.set_registry(previous)


@pytest.fixture(scope="module")
def rn50():
    return get_model("resnet50")


def jobs_for(rn50, n=2):
    return [SimJob(model=rn50, cluster=cluster_for_gpus(8), batch_size=64,
                   iterations=4, warmup=1, seed=seed) for seed in range(n)]


class TestEngineStats:
    def test_counts_executed_and_completed(self, rn50):
        engine = ExperimentEngine()
        engine.run_outcomes(jobs_for(rn50, 2))
        stats = engine.stats()
        assert stats.executed == 2
        assert stats.jobs_completed == 2
        assert stats.exec_s_total > 0
        assert stats.busy_s >= stats.exec_s_total * 0.5
        assert stats.mean_exec_s == pytest.approx(
            stats.exec_s_total / 2)

    def test_pool_utilization_bounded(self, rn50):
        engine = ExperimentEngine()
        engine.run_outcomes(jobs_for(rn50, 2))
        # Serial execution: the one "worker" is busy nearly the whole
        # batch, so utilization approaches (and never exceeds) 1.
        assert 0.0 < engine.stats().pool_utilization <= 1.0

    def test_cache_hits_do_not_count_as_executed(self, rn50, tmp_path):
        cache = SimulationCache(str(tmp_path))
        engine = ExperimentEngine(cache=cache)
        batch = jobs_for(rn50, 2)
        engine.run_outcomes(batch)
        outcomes = engine.run_outcomes(batch)  # all hits now
        stats = engine.stats()
        assert stats.executed == 2
        assert stats.jobs_completed == 4
        assert stats.cache.hits == 2
        assert all(o.cached and o.exec_s == 0.0 for o in outcomes)

    def test_outcomes_carry_timing(self, rn50):
        engine = ExperimentEngine()
        outcomes = engine.run_outcomes(jobs_for(rn50, 2))
        for o in outcomes:
            assert o.exec_s > 0.0
            assert o.queue_wait_s >= 0.0

    def test_to_dict_json_serializable(self, rn50):
        engine = ExperimentEngine()
        engine.run_outcomes(jobs_for(rn50, 1))
        payload = engine.stats().to_dict()
        json.dumps(payload)
        assert payload["executed"] == 1
        assert payload["mean_exec_s"] == pytest.approx(
            payload["exec_s_total"])
        assert 0.0 < payload["pool_utilization"] <= 1.0

    def test_describe_mentions_jobs_and_utilization(self, rn50):
        engine = ExperimentEngine()
        engine.run_outcomes(jobs_for(rn50, 2))
        text = engine.stats().describe()
        assert "2 jobs" in text and "pool utilization" in text

    def test_idle_engine_stats_are_zero(self):
        stats = ExperimentEngine().stats()
        assert stats == EngineStats(
            cache=stats.cache, executed=0, jobs_completed=0, busy_s=0.0,
            exec_s_total=0.0, queue_wait_s_total=0.0, worker_s_total=0.0)
        assert stats.mean_exec_s == 0.0
        assert stats.pool_utilization == 0.0


class TestEngineTelemetry:
    def test_jobs_recorded_by_cache_status(self, rn50, tmp_path):
        registry = telemetry_metrics.enable()
        cache = SimulationCache(str(tmp_path))
        engine = ExperimentEngine(cache=cache)
        batch = jobs_for(rn50, 2)
        engine.run_outcomes(batch)
        engine.run_outcomes(batch)
        counters = registry.snapshot()["counters"]
        assert counters['engine_jobs_total{cached="false"}'] == 2.0
        assert counters['engine_jobs_total{cached="true"}'] == 2.0
        assert counters["cache_misses_total"] == 2.0
        assert counters["cache_hits_total"] == 2.0
        assert counters["cache_stores_total"] == 2.0

    def test_exec_histograms_only_for_executed(self, rn50):
        registry = telemetry_metrics.enable()
        ExperimentEngine().run_outcomes(jobs_for(rn50, 2))
        hist = registry.snapshot()["histograms"]
        assert hist["engine_job_exec_s"]["count"] == 2
        assert hist["engine_queue_wait_s"]["count"] == 2

    def test_null_registry_records_nothing(self, rn50):
        telemetry_metrics.disable()
        engine = ExperimentEngine()
        engine.run_outcomes(jobs_for(rn50, 1))
        assert telemetry_metrics.get_registry().snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}}
        # ...but the engine's own counters still work.
        assert engine.stats().executed == 1


class TestSimulatorTelemetry:
    def test_iteration_metrics_recorded(self, rn50):
        registry = telemetry_metrics.enable()
        sim = DDPSimulator(rn50, cluster_for_gpus(8),
                           config=DDPConfig(compute_jitter=0.0,
                                            comm_jitter=0.0))
        trace = sim.simulate_iteration(64, np.random.default_rng(0))
        snap = registry.snapshot()
        assert snap["counters"]['sim_iterations_total{scheme="syncsgd"}'] \
            == 1.0
        assert snap["counters"]['sim_wire_bytes_total{scheme="syncsgd"}'] \
            == pytest.approx(trace.wire_bytes_total())
        assert snap["histograms"][
            'sim_sync_time_s{scheme="syncsgd"}']["count"] == 1
        assert snap["histograms"][
            'sim_overlap_s{scheme="syncsgd"}']["mean"] \
            == pytest.approx(trace.compute_comm_overlap())
        occupancy = snap["histograms"][
            'sim_comm_occupancy{scheme="syncsgd"}']["mean"]
        assert 0.0 < occupancy <= 1.0

    def test_span_kind_labels_bounded(self, rn50):
        registry = telemetry_metrics.enable()
        sim = DDPSimulator(rn50, cluster_for_gpus(8))
        sim.simulate_iteration(64, np.random.default_rng(0))
        hist = registry.snapshot()["histograms"]
        # Numeric suffixes are stripped: one "bucket" series, not one
        # series per bucket index.
        bucket_keys = [k for k in hist if k.startswith("sim_comm_span_s")
                       and "bucket" in k]
        assert bucket_keys == ['sim_comm_span_s{kind="bucket"}']

    def test_oom_counted(self, rn50):
        registry = telemetry_metrics.enable()
        sim = DDPSimulator(rn50, cluster_for_gpus(8))
        with pytest.raises(OutOfMemoryError):
            sim.simulate_iteration(100_000, np.random.default_rng(0))
        counters = registry.snapshot()["counters"]
        key = 'sim_oom_total{model="resnet50",scheme="syncsgd"}'
        assert counters[key] == 1.0

    def test_timeline_identical_with_and_without_telemetry(self, rn50):
        config = DDPConfig()
        cluster = cluster_for_gpus(8)
        telemetry_metrics.disable()
        plain = DDPSimulator(rn50, cluster, config=config) \
            .simulate_iteration(64, np.random.default_rng(42))
        telemetry_metrics.enable()
        recorded = DDPSimulator(rn50, cluster, config=config) \
            .simulate_iteration(64, np.random.default_rng(42))
        assert plain.spans == recorded.spans
        assert plain.sync_end == recorded.sync_end
        assert plain.iteration_end == recorded.iteration_end


class TestCollectiveTelemetry:
    def test_calls_and_bytes_counted(self):
        registry = telemetry_metrics.enable()
        ring_allreduce_time(2**20, p=8, bandwidth=1.25e9, alpha=25e-6)
        ring_allreduce_time(2**20, p=8, bandwidth=1.25e9, alpha=25e-6)
        counters = registry.snapshot()["counters"]
        assert counters[
            'collective_calls_total{algorithm="ring_allreduce"}'] == 2.0
        assert counters[
            'collective_bytes_total{algorithm="ring_allreduce"}'] \
            == 2.0 * 2**20

    def test_incast_degradation_counted(self):
        registry = telemetry_metrics.enable()
        allgather_time(2**20, p=8, bandwidth=1.25e9, alpha=25e-6,
                       incast_factor=1.5)
        counters = registry.snapshot()["counters"]
        assert counters[
            'collective_incast_degraded_total'
            '{algorithm="allgather"}'] == 1.0
