"""One module per table/figure of the paper's evaluation.

``EXPERIMENTS`` maps experiment ids to zero-configuration runners (all
parameters default to the paper's setup); the benchmark harness and the
``examples/reproduce_paper.py`` script iterate it.
"""

from typing import Callable, Dict

from .fig3_overlap import run_fig3
from .fig4_powersgd import run_fig4
from .fig5_topk import run_fig5
from .fig6_signsgd import run_fig6
from .fig7_batchsize import run_fig7
from .fig8_validation import median_errors, run_fig8
from .fig9_required_compression import run_fig9
from .fig10_headroom import run_fig10
from .fig11_bandwidth import run_fig11
from .fig12_compute import run_fig12
from .ext_time_to_accuracy import run_ext_tta
from .fig2_trace import run_fig2
from .fig13_tradeoff import run_fig13
from .runner import (
    PAPER_GPU_SWEEP,
    ExperimentResult,
    scaling_clusters,
    speedup,
)
from .reliability import run_reliability
from .scaling import PAPER_WORKLOADS, run_scaling_sweep
from .table1_classification import PAPER_TABLE1, run_table1
from .table2_encode_decode import run_table2

#: Registry of every reproduced table/figure.
EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "table1": run_table1,
    "fig2": run_fig2,
    "table2": run_table2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "ext-tta": run_ext_tta,
}

#: Exhibits beyond the paper's own tables/figures.  They are runnable
#: by id from the CLI but excluded from ``repro experiment all`` so the
#: canonical reproduction output stays byte-identical across versions.
EXTRA_EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "reliability": run_reliability,
}

__all__ = [
    "ExperimentResult", "scaling_clusters", "speedup", "PAPER_GPU_SWEEP",
    "PAPER_WORKLOADS", "run_scaling_sweep",
    "run_table1", "PAPER_TABLE1", "run_table2",
    "run_fig3", "run_fig4", "run_fig5", "run_fig6", "run_fig7",
    "run_fig8", "median_errors", "run_fig9", "run_fig10", "run_fig11",
    "run_fig12", "run_fig13", "run_ext_tta", "run_fig2",
    "run_reliability",
    "EXPERIMENTS", "EXTRA_EXPERIMENTS",
]
