"""Distributed training through real compression (end-to-end)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.training import (
    MLP,
    DistributedTrainer,
    MLPConfig,
    gaussian_blobs,
    train_with_method,
)


@pytest.fixture(scope="module")
def dataset():
    return gaussian_blobs(num_samples=512, num_features=8, num_classes=3,
                          seed=1)


class TestBaselineEquivalence:
    def test_fp32_aggregation_equals_large_batch_sgd(self, dataset):
        """Data-parallel fp32 must match running all shards through one
        model — synchronous SGD's defining property."""
        model_dp = MLP(MLPConfig(input_dim=8, hidden_dims=(16,),
                                 num_classes=3, seed=7))
        model_ref = MLP(MLPConfig(input_dim=8, hidden_dims=(16,),
                                  num_classes=3, seed=7))
        trainer = DistributedTrainer(model_dp, dataset, num_workers=4,
                                     method="fp32", lr=0.1, seed=2)
        from repro.training.distributed import TrainHistory
        history = TrainHistory()
        for step in range(5):
            # Reference: concatenate exactly the per-worker batches.
            _, worker_grads = trainer._worker_grads(16, step)
            ref_grads = {
                name: np.mean([g[name] for g in worker_grads], axis=0)
                for name in model_ref.param_names()}
            model_ref.apply_update(ref_grads, lr=0.1)
            trainer.step(16, step, history)
            for name in model_ref.param_names():
                np.testing.assert_allclose(
                    model_dp.params[name], model_ref.params[name],
                    rtol=1e-8, atol=1e-10)


class TestConvergence:
    @pytest.mark.parametrize("method,params,lr", [
        ("fp32", None, 0.2),
        ("fp16", None, 0.2),
        ("powersgd", {"rank": 2}, 0.2),
        ("topk", {"fraction": 0.25}, 0.2),
        ("qsgd", {"levels": 64}, 0.2),
        ("randomk", {"fraction": 0.5}, 0.2),
        ("gradiveq", {"block": 16, "dims": 8}, 0.2),
        ("onebit", None, 0.05),
    ])
    def test_method_converges(self, dataset, method, params, lr):
        history = train_with_method(
            dataset, method, params, num_workers=4, steps=120, lr=lr,
            seed=3)
        assert history.final_accuracy > 0.9, method
        assert history.final_loss < history.losses[0] / 3, method

    def test_signsgd_converges_with_small_lr(self, dataset):
        history = train_with_method(
            dataset, "signsgd", None, num_workers=4, steps=150, lr=0.01,
            seed=3)
        assert history.final_accuracy > 0.9

    def test_error_feedback_required_for_aggressive_topk(self, dataset):
        """Without EF, aggressive Top-K converges measurably slower
        (higher steady-state loss); EF recovers the dense trajectory."""
        from repro.compression import SparseGatherAggregator, TopKCompressor
        from repro.training.distributed import TrainHistory

        final_losses = {}
        for use_ef in (True, False):
            model = MLP(MLPConfig(input_dim=8, hidden_dims=(16,),
                                  num_classes=3, seed=5))
            trainer = DistributedTrainer(model, dataset, 4, method="fp32",
                                         lr=0.3, seed=5)
            # Swap in topk aggregators with/without EF.
            trainer.aggregators = {
                name: SparseGatherAggregator(
                    4, TopKCompressor(0.02), use_error_feedback=use_ef)
                for name in model.param_names()}
            history = TrainHistory()
            losses = []
            for step in range(150):
                losses.append(trainer.step(32, step, history))
            final_losses[use_ef] = float(np.mean(losses[-10:]))
        assert final_losses[True] < 0.6 * final_losses[False]


class TestTrafficAccounting:
    def test_compression_reduces_bytes(self, dataset):
        dense = train_with_method(dataset, "fp32", num_workers=4,
                                  steps=20, seed=0)
        compressed = train_with_method(dataset, "signsgd", num_workers=4,
                                       steps=20, lr=0.01, seed=0)
        assert (compressed.bytes_sent_per_worker
                < dense.bytes_sent_per_worker / 20)

    def test_gather_methods_receive_more_with_more_workers(self, dataset):
        h2 = train_with_method(dataset, "topk",
                               {"fraction": 0.1}, num_workers=2,
                               steps=10, seed=0)
        h8 = train_with_method(dataset, "topk",
                               {"fraction": 0.1}, num_workers=8,
                               steps=10, seed=0)
        assert (h8.bytes_received_per_worker
                > 3 * h2.bytes_received_per_worker)

    def test_history_counts_steps(self, dataset):
        history = train_with_method(dataset, "fp32", num_workers=2,
                                    steps=17, seed=0)
        assert history.steps == 17
        assert len(history.losses) == 17


class TestTrainerValidation:
    def test_too_many_workers_rejected(self):
        ds = gaussian_blobs(num_samples=4, num_features=3)
        model = MLP(MLPConfig(input_dim=3, hidden_dims=(4,),
                              num_classes=2))
        with pytest.raises(ConfigurationError):
            DistributedTrainer(model, ds, num_workers=8)

    def test_zero_steps_rejected(self, dataset):
        model = MLP(MLPConfig(input_dim=8, hidden_dims=(4,),
                              num_classes=3))
        trainer = DistributedTrainer(model, dataset, 2)
        with pytest.raises(ConfigurationError):
            trainer.train(steps=0)

    def test_empty_history_raises(self):
        from repro.training.distributed import TrainHistory
        with pytest.raises(ConfigurationError):
            TrainHistory().final_loss
