"""Figure 4: scalability of PowerSGD vs synchronous SGD.

PowerSGD ranks 4, 8 and 16 against the optimized syncSGD baseline, for
ResNet-50/101 (batch 64) and BERT_BASE (batch 12), 8 to 96 GPUs.  The
paper's headline observations, which the benchmark asserts:

* PowerSGD is *slower* than syncSGD for both ResNets at batch 64;
* for BERT at 96 GPUs, rank 4 and rank 8 win (~23 % and ~14 %) while
  rank 16 loses.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..compression.schemes import PowerSGDScheme
from ..engine import ExperimentEngine
from .runner import PAPER_GPU_SWEEP, ExperimentResult
from .scaling import PAPER_WORKLOADS, run_scaling_sweep

#: The ranks the PowerSGD authors recommend and the figure sweeps.
FIG4_RANKS: Tuple[int, ...] = (4, 8, 16)


def run_fig4(gpu_counts: Sequence[int] = PAPER_GPU_SWEEP,
             workloads=PAPER_WORKLOADS,
             iterations: int = 40, warmup: int = 5,
             seed: int = 0,
             engine: Optional[ExperimentEngine] = None) -> ExperimentResult:
    """Scaling sweep for PowerSGD ranks 4/8/16 vs syncSGD."""
    result = run_scaling_sweep(
        experiment_id="fig4",
        title="PowerSGD scalability vs syncSGD",
        schemes=[PowerSGDScheme(rank=r) for r in FIG4_RANKS],
        workloads=workloads,
        gpu_counts=gpu_counts,
        iterations=iterations,
        warmup=warmup,
        seed=seed,
        engine=engine,
    )
    return result
