"""Figure 3: overlapping gradient compression with computation loses.

The paper integrates compression to run concurrently with the backward
pass and finds it *slower* than running it sequentially afterwards,
because both phases are compute-heavy and contend for the GPU (§3.1).
We run both execution modes through the simulator for the same three
methods the figure shows (PowerSGD rank 4, Top-K 1 %, signSGD) on
ResNet-101.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..compression.schemes import (
    PowerSGDScheme,
    Scheme,
    SignSGDScheme,
    TopKScheme,
)
from ..engine import ExperimentEngine, SimJob
from ..hardware import cluster_for_gpus
from ..models import get_model
from ..simulator import DDPConfig
from .runner import ExperimentResult

#: The figure's method roster.
FIG3_SCHEMES: Tuple[Scheme, ...] = (
    PowerSGDScheme(rank=4),
    TopKScheme(fraction=0.01),
    SignSGDScheme(),
)


def run_fig3(model_name: str = "resnet101", batch_size: int = 64,
             num_gpus: int = 16, iterations: int = 40, warmup: int = 5,
             seed: int = 0,
             engine: Optional[ExperimentEngine] = None) -> ExperimentResult:
    """Sequential vs overlapped compression execution."""
    eng = engine if engine is not None else ExperimentEngine()
    model = get_model(model_name)
    cluster = cluster_for_gpus(num_gpus)
    jobs = [
        SimJob(model=model, cluster=cluster, scheme=scheme,
               config=DDPConfig(overlap_compression=overlapped),
               batch_size=batch_size, iterations=iterations,
               warmup=warmup, seed=seed)
        for scheme in FIG3_SCHEMES
        for overlapped in (False, True)
    ]
    outcomes = eng.run_outcomes(jobs)
    rows: List[Dict[str, Any]] = []
    for scheme, (seq_out, ovl_out) in zip(
            FIG3_SCHEMES, zip(outcomes[0::2], outcomes[1::2])):
        times = {
            "sequential": seq_out.unwrap().mean * 1e3,
            "overlapped": ovl_out.unwrap().mean * 1e3,
        }
        rows.append({
            "scheme": scheme.label,
            "sequential_ms": times["sequential"],
            "overlapped_ms": times["overlapped"],
            "overlap_penalty": (times["overlapped"] - times["sequential"])
            / times["sequential"],
        })
    return ExperimentResult(
        experiment_id="fig3",
        title=(f"Compression overlapped with backward vs sequential "
               f"({model_name}, {num_gpus} GPUs, batch {batch_size})"),
        columns=("scheme", "sequential_ms", "overlapped_ms",
                 "overlap_penalty"),
        rows=tuple(rows),
    )
