"""Timeline traces: the simulator's equivalent of an Nsight profile.

Every simulated iteration produces a list of :class:`Span` records —
(stream, label, start, end) — from which the experiments derive the
quantities the paper measures from real Nsight traces: the stretched
backward duration (for γ), per-bucket communication occupancy, and the
Figure-2-style visualization in the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import SimulationError

#: Stream names used by the DDP simulator.
COMPUTE_STREAM = "compute"
COMM_STREAM = "comm"


@dataclass(frozen=True)
class Span:
    """One contiguous occupancy interval on a stream.

    ``bytes_on_wire`` carries the payload size a communication span
    moved (0 for compute spans); the trace exporter accumulates it into
    a Perfetto counter track and telemetry sums it per scheme.
    """

    stream: str
    label: str
    start: float
    end: float
    bytes_on_wire: float = 0.0

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise SimulationError(
                f"span {self.label!r} ends before it starts "
                f"({self.start} -> {self.end})")
        if self.bytes_on_wire < 0:
            raise SimulationError(
                f"span {self.label!r} carries negative bytes "
                f"({self.bytes_on_wire})")

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class IterationTrace:
    """All spans of one simulated training iteration, plus key instants.

    Attributes:
        spans: Every stream occupancy interval.
        forward_end: When the forward pass finished.
        backward_end: When the last backward kernel finished.
        sync_end: When the last gradient byte was aggregated — the end of
            the paper's "gradient computation and synchronization" window.
        iteration_end: After the optimizer step.
    """

    spans: List[Span] = field(default_factory=list)
    forward_end: float = 0.0
    backward_end: float = 0.0
    sync_end: float = 0.0
    iteration_end: float = 0.0

    def add(self, span: Span) -> None:
        self.spans.append(span)

    def stream_spans(self, stream: str) -> List[Span]:
        """Spans of one stream in start order."""
        return sorted((s for s in self.spans if s.stream == stream),
                      key=lambda s: s.start)

    def stream_busy_time(self, stream: str) -> float:
        """Total occupied seconds on a stream (spans never overlap within
        one stream by construction)."""
        return sum(s.duration for s in self.stream_spans(stream))

    def streams(self) -> List[str]:
        """Stream names in first-appearance order (span insertion order
        tracks simulation structure, so this is stable)."""
        seen: List[str] = []
        for span in self.spans:
            if span.stream not in seen:
                seen.append(span.stream)
        return seen

    def wire_bytes_total(self) -> float:
        """Total payload bytes communication spans carried."""
        return sum(s.bytes_on_wire for s in self.spans)

    def stream_overlap(self, stream_a: str, stream_b: str) -> float:
        """Seconds during which two streams are both busy.

        A sorted two-pointer sweep: within one stream spans never
        overlap (by construction), so each pair that can intersect is
        visited exactly once and the sweep is O(n + m) after sorting —
        the previous implementation compared every pair, which made
        telemetry on long multi-iteration traces quadratic.
        """
        spans_a = self.stream_spans(stream_a)
        spans_b = self.stream_spans(stream_b)
        overlap = 0.0
        i = j = 0
        while i < len(spans_a) and j < len(spans_b):
            a, b = spans_a[i], spans_b[j]
            overlap += max(0.0, min(a.end, b.end) - max(a.start, b.start))
            # Advance whichever interval ends first; the other may still
            # intersect the next span of the advanced stream.
            if a.end <= b.end:
                i += 1
            else:
                j += 1
        return overlap

    def compute_comm_overlap(self) -> float:
        """Seconds during which compute and comm streams are both busy —
        the overlap DDP exists to create."""
        return self.stream_overlap(COMPUTE_STREAM, COMM_STREAM)

    def sync_time(self) -> float:
        """The paper's per-iteration measurement: backward start (==
        forward end) to the end of gradient aggregation."""
        return self.sync_end - self.forward_end

    def render_ascii(self, width: int = 78) -> str:
        """Render the two streams as an ASCII Gantt chart (Figure 2
        style).  For humans; experiments never parse this."""
        if not self.spans:
            return "(empty trace)"
        t_max = max(s.end for s in self.spans)
        if t_max <= 0:
            return "(zero-length trace)"
        lines = []
        for stream in (COMPUTE_STREAM, COMM_STREAM):
            row = [" "] * width
            for span in self.stream_spans(stream):
                lo = int(span.start / t_max * (width - 1))
                hi = max(lo + 1, int(span.end / t_max * (width - 1)))
                mark = "#" if stream == COMPUTE_STREAM else "="
                for i in range(lo, min(hi, width)):
                    row[i] = mark
            lines.append(f"{stream:>8s} |{''.join(row)}|")
        lines.append(f"{'':>8s}  0.0{'':>{max(1, width - 16)}}{t_max * 1e3:8.1f} ms")
        return "\n".join(lines)


def estimate_gamma(distributed: IterationTrace,
                   standalone_backward_s: float) -> float:
    """The paper's §4.3 γ methodology: the ratio of the backward-pass
    duration seen in a distributed trace to the standalone backward time
    measured on one machine."""
    if standalone_backward_s <= 0:
        raise SimulationError(
            f"standalone backward time must be > 0, "
            f"got {standalone_backward_s}")
    stretched = distributed.backward_end - distributed.forward_end
    return stretched / standalone_backward_s
