"""VGG-16 spec: a low-compute-density, parameter-heavy workload.

VGG-16 (138 M parameters, 528 MB fp32) is the canonical example of a
model whose communication-to-computation ratio is much worse than the
ResNets' — the regime the paper's §7 "workload trends" discussion says
gradient compression could help.  We include it as an extension workload
for the what-if analyses.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import ConfigurationError
from ..units import FLOAT32_BYTES
from .flops import conv2d_flops, linear_flops, pool_flops
from .layers import LayerSpec, ModelSpec

#: VGG-16 configuration "D": conv widths per stage, 'M' = 2x2 max-pool.
_VGG16_CFG: Tuple = (64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
                     512, 512, 512, "M", 512, 512, 512, "M")


def vgg16(num_classes: int = 1000, input_hw: int = 224) -> ModelSpec:
    """Build the VGG-16 spec for ``input_hw`` x ``input_hw`` inputs."""
    if input_hw % 32 != 0 or input_hw <= 0:
        raise ConfigurationError(
            f"input_hw must be a positive multiple of 32, got {input_hw}")
    layers: List[LayerSpec] = []
    cin, hw, conv_idx, pool_idx = 3, input_hw, 0, 0
    for item in _VGG16_CFG:
        if item == "M":
            hw //= 2
            layers.append(LayerSpec(
                name=f"pool{pool_idx}", kind="pool",
                fwd_flops_per_sample=pool_flops(cin, hw, hw, 2),
                activation_bytes_per_sample=cin * hw * hw * FLOAT32_BYTES,
            ))
            pool_idx += 1
            continue
        cout = int(item)
        layers.append(LayerSpec(
            name=f"conv{conv_idx}", kind="conv",
            param_shape=(cout, cin, 3, 3),
            matrix_shape=(cout, cin * 9),
            extra_params=cout,
            fwd_flops_per_sample=conv2d_flops(cin, cout, 3, hw, hw),
            activation_bytes_per_sample=cout * hw * hw * FLOAT32_BYTES,
        ))
        conv_idx += 1
        cin = cout

    flat = cin * hw * hw  # 512 * 7 * 7 for 224x224 inputs
    for i, (fin, fout) in enumerate(
            ((flat, 4096), (4096, 4096), (4096, num_classes))):
        layers.append(LayerSpec(
            name=f"fc{i}", kind="linear",
            param_shape=(fout, fin),
            matrix_shape=(fout, fin),
            extra_params=fout,
            fwd_flops_per_sample=linear_flops(fin, fout),
            activation_bytes_per_sample=fout * FLOAT32_BYTES,
        ))

    return ModelSpec(
        name="vgg16",
        layers=tuple(layers),
        default_batch_size=64,
        sample_description=f"{input_hw}x{input_hw} RGB image (ImageNet)",
        compute_efficiency=0.9,
        batch_half_saturation=8.0,
        gather_granularity="layer",
    )
