"""Ablation: parameter server vs all-reduce (§2.2's topology shift).

The paper notes that by DawnBench time every serious submission had
moved from parameter servers to all-reduce.  This ablation shows why in
our simulator: PS aggregation funnels ``n·(p-1)`` bytes through one NIC
(with incast), so per-iteration time blows up linearly with scale while
ring all-reduce stays flat — a bigger effect than *any* of the paper's
compression findings, which is exactly the paper's framing: systems
optimizations first, then ask whether compression still helps.
"""

from repro.hardware import cluster_for_gpus
from repro.models import get_model
from repro.simulator import DDPConfig, DDPSimulator


def run_sweep():
    model = get_model("resnet50")
    out = {}
    for algo in ("ring", "parameter_server"):
        cfg = DDPConfig(allreduce_algorithm=algo, compute_jitter=0.0,
                        comm_jitter=0.0)
        for gpus in (8, 32, 96):
            sim = DDPSimulator(model, cluster_for_gpus(gpus), config=cfg)
            out[(algo, gpus)] = sim.run(64, iterations=30,
                                        warmup=5).mean * 1e3
    return out


def test_ablation_parameter_server(run_once):
    times = run_once(run_sweep)
    print("\nResNet-50 per-iteration (ms):")
    for gpus in (8, 32, 96):
        print(f"  p={gpus:3d}: ring {times[('ring', gpus)]:7.1f}   "
              f"PS {times[('parameter_server', gpus)]:8.1f}")

    # Ring is ~flat across 12x scale; PS grows super-linearly.
    assert times[("ring", 96)] < 1.5 * times[("ring", 8)]
    assert times[("parameter_server", 96)] > \
        3 * times[("parameter_server", 8)]
    # At scale, the topology choice dwarfs any compression gain.
    assert times[("parameter_server", 96)] > 4 * times[("ring", 96)]
    # PS degradation is monotone in scale (one NIC soaks p-1 gradients).
    assert (times[("parameter_server", 8)]
            < times[("parameter_server", 32)]
            < times[("parameter_server", 96)])
