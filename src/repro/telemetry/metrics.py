"""Labeled metrics: counters, gauges and histograms behind one registry.

The paper's methodology is built on measurement — γ from Nsight traces,
per-bucket communication occupancy, overlap fractions — so the
reproduction carries its own instrumentation layer.  Code records into
whatever registry is currently installed process-wide:

* the default is a :class:`NullRegistry`, whose metric handles are
  shared no-op singletons.  Disabled instrumentation costs one attribute
  load and a no-op call — it never touches an RNG, never allocates
  per-sample state, and therefore keeps every simulated timeline
  bit-identical to an uninstrumented run;
* installing a :class:`MetricsRegistry` (``enable()``, or ``repro``'s
  CLI does it for you) turns the same call sites into real counters,
  gauges and histograms, snapshotted into run manifests and the
  ``--metrics`` CLI report.

Metric identity is a name plus a small set of string-valued labels
(``counter("collective_calls_total", algorithm="ring")``), the Prometheus
convention: low-cardinality labels only — schemes, algorithms, span
kinds — never per-iteration values.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ConfigurationError

#: Histograms keep at most this many raw samples for percentiles; the
#: count/sum/min/max aggregates remain exact beyond it.
MAX_HISTOGRAM_SAMPLES = 100_000

#: Percentiles reported in histogram summaries.
SUMMARY_PERCENTILES = (50.0, 90.0, 99.0)

#: A metric key: name plus sorted ``(label, value)`` pairs.
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def metric_key(name: str, labels: Dict[str, Any]) -> MetricKey:
    """Canonical hashable identity of a labeled metric."""
    if not name:
        raise ConfigurationError("metric name must be non-empty")
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text-exposition rules:
    backslash, double quote and newline become ``\\\\``, ``\\"`` and
    ``\\n``.  Shared by :func:`format_key` and :func:`render_prometheus`
    so snapshot keys and scrape output agree."""
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def _unescape_label_value(value: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"\\": "\\", '"': '"', "n": "\n"}.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def format_key(key: MetricKey) -> str:
    """Render a key Prometheus-style: ``name{label="value",...}``.

    Label values are escaped (:func:`escape_label_value`), so a value
    containing ``"``, ``\\`` or a newline round-trips through
    :func:`parse_key` instead of producing a malformed key.
    """
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f'{k}="{escape_label_value(v)}"' for k, v in labels)
    return f"{name}{{{inner}}}"


def parse_key(formatted: str) -> MetricKey:
    """Exact inverse of :func:`format_key`."""
    brace = formatted.find("{")
    if brace == -1:
        return (formatted, ())
    if not formatted.endswith("}"):
        raise ConfigurationError(f"malformed metric key: {formatted!r}")
    name = formatted[:brace]
    inner = formatted[brace + 1:-1]
    labels: List[Tuple[str, str]] = []
    i = 0
    while i < len(inner):
        eq = inner.find("=", i)
        if eq == -1 or eq + 1 >= len(inner) or inner[eq + 1] != '"':
            raise ConfigurationError(f"malformed metric key: {formatted!r}")
        label = inner[i:eq]
        j = eq + 2
        buf: List[str] = []
        while True:
            if j >= len(inner):
                raise ConfigurationError(
                    f"malformed metric key: {formatted!r}")
            ch = inner[j]
            if ch == "\\" and j + 1 < len(inner):
                buf.append(inner[j:j + 2])
                j += 2
            elif ch == '"':
                j += 1
                break
            else:
                buf.append(ch)
                j += 1
        labels.append((label, _unescape_label_value("".join(buf))))
        if j < len(inner):
            if inner[j] != ",":
                raise ConfigurationError(
                    f"malformed metric key: {formatted!r}")
            j += 1
        i = j
    return (name, tuple(labels))


class Counter:
    """Monotonically increasing count (events, bytes, cache hits)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counters only go up; got increment {amount}")
        self.value += amount


class Gauge:
    """A value that goes up and down (utilization, queue depth)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Distribution of observed values with percentile summaries.

    Exact ``count``/``total``/``min``/``max``; percentiles come from a
    retained sample capped at :data:`MAX_HISTOGRAM_SAMPLES` (the cap
    exists so a million-iteration sweep cannot grow memory unboundedly;
    within it, percentiles are exact too).
    """

    __slots__ = ("count", "total", "min", "max", "_samples")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: List[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < MAX_HISTOGRAM_SAMPLES:
            self._samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (nearest-rank) of retained samples."""
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(0, math.ceil(q / 100.0 * len(ordered)) - 1)
        return ordered[rank]

    def summary(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0, "total": 0.0, "mean": 0.0,
                    "min": 0.0, "max": 0.0,
                    **{f"p{int(q)}": 0.0 for q in SUMMARY_PERCENTILES}}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            **{f"p{int(q)}": self.percentile(q)
               for q in SUMMARY_PERCENTILES},
        }


class _NullMetric:
    """Shared do-nothing handle for every metric type when disabled."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_METRIC = _NullMetric()


class NullRegistry:
    """The disabled backend: every handle is the same no-op singleton.

    ``enabled`` is ``False`` so call sites can skip *derived* work (e.g.
    computing an overlap integral only to discard it); the handles
    themselves are always safe to use.
    """

    enabled = False

    def counter(self, name: str, **labels: Any) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, **labels: Any) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, **labels: Any) -> _NullMetric:
        return _NULL_METRIC

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


class MetricsRegistry:
    """Live metrics store: creates metrics on first use, keyed by
    name + labels."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[MetricKey, Counter] = {}
        self._gauges: Dict[MetricKey, Gauge] = {}
        self._histograms: Dict[MetricKey, Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        key = metric_key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = metric_key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = metric_key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram()
        return metric

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Plain-dict rendering of every metric, JSON-serializable,
        keys formatted Prometheus-style and sorted."""
        return {
            "counters": {format_key(k): m.value
                         for k, m in sorted(self._counters.items())},
            "gauges": {format_key(k): m.value
                       for k, m in sorted(self._gauges.items())},
            "histograms": {format_key(k): m.summary()
                           for k, m in sorted(self._histograms.items())},
        }


#: Quantiles emitted for histogram summaries in Prometheus output,
#: mapped to the snapshot percentile fields they come from.
_PROM_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"))


def _prom_value(value: Any) -> str:
    number = float(value)
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    return repr(number)


def _prom_sample(name: str, labels: Tuple[Tuple[str, str], ...],
                 value: Any,
                 extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    rendered = format_key((name, labels + extra))
    return f"{rendered} {_prom_value(value)}"


def render_prometheus(snapshot: Dict[str, Dict[str, Any]]) -> str:
    """Render a registry ``snapshot()`` in the Prometheus text
    exposition format (version 0.0.4).

    Counters and gauges map directly; histograms are exposed as
    summaries — one ``quantile``-labeled sample per reported
    percentile plus ``_sum`` and ``_count`` series.  Metric families
    are grouped under one ``# TYPE`` line each; label values use
    :func:`escape_label_value`.
    """
    for section in ("counters", "gauges", "histograms"):
        if section not in snapshot:
            raise ConfigurationError(
                f"snapshot is missing the {section!r} section")
    lines: List[str] = []

    def families(section: str) -> Dict[str, List[Tuple[MetricKey, Any]]]:
        grouped: Dict[str, List[Tuple[MetricKey, Any]]] = {}
        for formatted, value in snapshot[section].items():
            key = parse_key(formatted)
            grouped.setdefault(key[0], []).append((key, value))
        return grouped

    for name, entries in sorted(families("counters").items()):
        lines.append(f"# TYPE {name} counter")
        for key, value in entries:
            lines.append(_prom_sample(name, key[1], value))
    for name, entries in sorted(families("gauges").items()):
        lines.append(f"# TYPE {name} gauge")
        for key, value in entries:
            lines.append(_prom_sample(name, key[1], value))
    for name, entries in sorted(families("histograms").items()):
        lines.append(f"# TYPE {name} summary")
        for key, summary in entries:
            for quantile, field in _PROM_QUANTILES:
                lines.append(_prom_sample(
                    name, key[1], summary[field],
                    extra=(("quantile", quantile),)))
            lines.append(_prom_sample(name + "_sum", key[1],
                                      summary["total"]))
            lines.append(_prom_sample(name + "_count", key[1],
                                      summary["count"]))
    return "\n".join(lines) + "\n" if lines else ""


#: One sample line: metric name, optional label set, float value.
_PROM_SAMPLE_RE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*")*\})?'
    r' (NaN|[+-]?Inf|[+-]?[0-9]*\.?[0-9]+([eE][+-]?[0-9]+)?)$')

#: Comment lines: ``# TYPE name counter|gauge|summary|histogram`` or
#: ``# HELP name text``.
_PROM_COMMENT_RE = re.compile(
    r'^# (TYPE [a-zA-Z_:][a-zA-Z0-9_:]* '
    r'(counter|gauge|summary|histogram|untyped)'
    r'|HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*)$')


def validate_prometheus_text(text: str) -> List[str]:
    """Line-format check of a text exposition; returns a list of
    ``"line N: ..."`` problems (empty means valid).  Shared by the
    test suite and ``tools/check_trace.py``."""
    problems: List[str] = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("#"):
            if not _PROM_COMMENT_RE.match(line):
                problems.append(f"line {number}: malformed comment: {line!r}")
        elif not _PROM_SAMPLE_RE.match(line):
            problems.append(f"line {number}: malformed sample: {line!r}")
    return problems


#: The process-global registry instrumented code records into.
_REGISTRY: Any = NullRegistry()


def get_registry() -> Any:
    """The currently installed registry (never ``None``)."""
    return _REGISTRY


def set_registry(registry: Any) -> Any:
    """Install ``registry`` process-wide; returns the previous one."""
    global _REGISTRY
    if registry is None:
        raise ConfigurationError(
            "registry must not be None; use disable() for the null backend")
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


def enable() -> MetricsRegistry:
    """Install (and return) a fresh live registry."""
    registry = MetricsRegistry()
    set_registry(registry)
    return registry


def disable() -> None:
    """Reinstall the null backend."""
    set_registry(NullRegistry())
