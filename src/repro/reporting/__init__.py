"""Terminal and markdown rendering of experiment outputs."""

from .charts import bar_chart, line_chart, scaling_chart
from .markdown import comparison_table, to_markdown
from .metrics_report import metrics_to_markdown, render_metrics

__all__ = [
    "line_chart", "bar_chart", "scaling_chart",
    "to_markdown", "comparison_table",
    "render_metrics", "metrics_to_markdown",
]
