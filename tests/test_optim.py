"""Optimizers and LR schedules for the training substrate."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.training import (
    SGD,
    Adam,
    ConstantLR,
    StepDecayLR,
    WarmupCosineLR,
)


def quadratic_grad(params):
    """Gradient of 0.5 * ||w||^2: the identity — minimizer at 0."""
    return {"w": params["w"].copy()}


class TestSchedules:
    def test_constant(self):
        sched = ConstantLR(0.3)
        assert sched.lr_at(0) == sched.lr_at(1000) == 0.3

    def test_step_decay(self):
        sched = StepDecayLR(1.0, every=10, factor=0.1)
        assert sched.lr_at(9) == pytest.approx(1.0)
        assert sched.lr_at(10) == pytest.approx(0.1)
        assert sched.lr_at(25) == pytest.approx(0.01)

    def test_warmup_cosine(self):
        sched = WarmupCosineLR(1.0, warmup_steps=10, total_steps=110)
        assert sched.lr_at(0) == pytest.approx(0.1)
        assert sched.lr_at(9) == pytest.approx(1.0)
        assert sched.lr_at(10) == pytest.approx(1.0)
        assert sched.lr_at(110) == pytest.approx(0.0, abs=1e-9)
        # Monotone decreasing after warm-up.
        values = [sched.lr_at(s) for s in range(10, 111, 10)]
        assert values == sorted(values, reverse=True)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ConstantLR(0.0)
        with pytest.raises(ConfigurationError):
            StepDecayLR(1.0, every=0)
        with pytest.raises(ConfigurationError):
            WarmupCosineLR(1.0, warmup_steps=10, total_steps=5)
        with pytest.raises(ConfigurationError):
            ConstantLR(0.1).lr_at(-1)


class TestSGD:
    def test_plain_sgd_descends_quadratic(self):
        params = {"w": np.array([10.0, -4.0])}
        opt = SGD(lr=0.1)
        for _ in range(100):
            opt.step(params, quadratic_grad(params))
        assert np.abs(params["w"]).max() < 1e-3

    def test_momentum_accelerates(self):
        slow = {"w": np.array([10.0])}
        fast = {"w": np.array([10.0])}
        opt_plain = SGD(lr=0.01)
        opt_momentum = SGD(lr=0.01, momentum=0.9)
        for _ in range(30):
            opt_plain.step(slow, quadratic_grad(slow))
            opt_momentum.step(fast, quadratic_grad(fast))
        assert abs(fast["w"][0]) < abs(slow["w"][0])

    def test_weight_decay_pulls_toward_zero(self):
        params = {"w": np.array([5.0])}
        opt = SGD(lr=0.1, weight_decay=0.5)
        opt.step(params, {"w": np.zeros(1)})  # zero gradient
        assert params["w"][0] < 5.0

    def test_schedule_integration(self):
        params = {"w": np.array([1.0])}
        opt = SGD(schedule=StepDecayLR(1.0, every=1, factor=0.5))
        opt.step(params, {"w": np.array([1.0])})   # lr 1.0
        assert params["w"][0] == pytest.approx(0.0)
        opt.step(params, {"w": np.array([1.0])})   # lr 0.5
        assert params["w"][0] == pytest.approx(-0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SGD(momentum=1.0)
        with pytest.raises(ConfigurationError):
            SGD(weight_decay=-1)
        opt = SGD()
        with pytest.raises(ConfigurationError):
            opt.step({"w": np.zeros(2)}, {"v": np.zeros(2)})
        with pytest.raises(ConfigurationError):
            opt.step({"w": np.zeros(2)}, {"w": np.zeros(3)})


class TestAdam:
    def test_descends_quadratic(self):
        params = {"w": np.array([10.0, -4.0])}
        opt = Adam(lr=0.5)
        for _ in range(200):
            opt.step(params, quadratic_grad(params))
        assert np.abs(params["w"]).max() < 1e-2

    def test_per_coordinate_scaling(self):
        # Adam normalizes per coordinate: both coordinates move at ~lr
        # despite 100x gradient magnitude difference.
        params = {"w": np.array([100.0, 1.0])}
        opt = Adam(lr=0.1)
        before = params["w"].copy()
        opt.step(params, quadratic_grad(params))
        deltas = before - params["w"]
        assert deltas[0] == pytest.approx(deltas[1], rel=0.05)

    def test_steps_counted(self):
        opt = Adam()
        params = {"w": np.zeros(2)}
        for _ in range(3):
            opt.step(params, {"w": np.ones(2)})
        assert opt.steps_taken == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Adam(beta1=1.0)
        with pytest.raises(ConfigurationError):
            Adam(eps=0)


class TestTrainerIntegration:
    def test_momentum_trainer_converges(self):
        from repro.training import gaussian_blobs, train_with_method
        ds = gaussian_blobs(256, 8, 3, seed=5)
        history = train_with_method(
            ds, "fp32", steps=80, seed=5,
            optimizer=SGD(lr=0.05, momentum=0.9))
        assert history.final_accuracy > 0.9

    def test_adam_with_compression(self):
        from repro.training import gaussian_blobs, train_with_method
        ds = gaussian_blobs(256, 8, 3, seed=5)
        history = train_with_method(
            ds, "powersgd", {"rank": 2}, steps=80, seed=5,
            optimizer=Adam(lr=0.02))
        assert history.final_accuracy > 0.9
