#!/usr/bin/env python
"""End-to-end smoke check of ``repro serve``.

``make serve-smoke`` (and the CI job of the same name) runs this tool,
which boots a real server on an ephemeral port and drives the
acceptance criteria through plain HTTP:

* ``GET /healthz`` answers with scheduler counters;
* a ``POST /v1/whatif`` round trip returns the **same ranked
  recommendation bytes** as the offline ``repro recommend`` CLI for
  the same inputs;
* three concurrent seed-varied ``POST /v1/simulate`` requests are
  observably coalesced into one scheduler batch
  (``serving_batch_occupancy`` > 1 on ``/metrics``);
* an over-quota tenant is rejected with a structured 429 carrying
  ``Retry-After``;
* ``GET /metrics`` passes
  :func:`repro.telemetry.metrics.validate_prometheus_text` and carries
  the serving series.

Exits non-zero with one problem per line on stderr, so the make target
fails loudly and the CI log says exactly which guarantee broke.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.telemetry.metrics import validate_prometheus_text  # noqa: E402

#: Metric series the smoke run must leave on /metrics.
REQUIRED_SERIES = ("serving_requests_total", "serving_batch_occupancy",
                   "serving_rejected_total")


def _post(base: str, path: str, body: Dict[str, Any],
          tenant: Optional[str] = None) -> Tuple[int, Dict[str, Any]]:
    headers = {"Content-Type": "application/json"}
    if tenant:
        headers["X-Tenant"] = tenant
    request = urllib.request.Request(
        base + path, data=json.dumps(body).encode("utf-8"),
        headers=headers)
    with urllib.request.urlopen(request, timeout=120) as resp:
        return resp.status, json.loads(resp.read())


def _get(base: str, path: str) -> Tuple[int, bytes]:
    with urllib.request.urlopen(base + path, timeout=60) as resp:
        return resp.status, resp.read()


def _poll(base: str, job_id: str, timeout_s: float = 120.0,
          ) -> Dict[str, Any]:
    deadline = time.monotonic() + timeout_s
    state: Dict[str, Any] = {"status": "unknown"}
    while time.monotonic() < deadline:
        _, raw = _get(base, f"/v1/jobs/{job_id}?wait_s=10")
        state = json.loads(raw)
        if state["status"] in ("done", "failed", "expired"):
            break
    return state


def check_server(base: str) -> List[str]:
    """Drive every smoke assertion against a live server."""
    problems: List[str] = []

    # --- healthz
    status, raw = _get(base, "/healthz")
    health = json.loads(raw)
    if status != 200 or health.get("status") != "ok":
        problems.append(f"healthz: {status} {health}")

    # --- whatif round trip, byte-for-byte vs the offline CLI
    offline = subprocess.run(
        [sys.executable, "-m", "repro", "recommend",
         "--model", "resnet50", "--gpus", "8"],
        capture_output=True, text=True, timeout=300,
        env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")})
    if offline.returncode != 0:
        problems.append(f"offline recommend failed: {offline.stderr}")
    status, body = _post(base, "/v1/whatif",
                         {"model": "resnet50", "gpus": 8})
    if status != 200 or body.get("status") != "done":
        problems.append(f"whatif: {status} status={body.get('status')} "
                        f"error={body.get('error')}")
    elif body["result"]["rendered"] + "\n" != offline.stdout:
        problems.append(
            "whatif response does not match `repro recommend` "
            f"byte-for-byte:\n--- served ---\n"
            f"{body['result']['rendered']}\n--- offline ---\n"
            f"{offline.stdout}")
    elif not any(c["crossings"] for c in body["result"]["crossovers"]):
        problems.append("whatif: no crossover bandwidths in response")

    # --- three concurrent seed-varied simulations must coalesce
    job_ids = []
    for seed in range(3):
        status, body = _post(base, "/v1/simulate",
                             {"model": "resnet50", "gpus": 8,
                              "iterations": 20, "seed": seed})
        if status != 202:
            problems.append(f"simulate submit: {status} {body}")
        job_ids.append(body.get("id"))
    for job_id in job_ids:
        state = _poll(base, job_id)
        if state["status"] != "done":
            problems.append(f"simulate job {job_id}: "
                            f"{state['status']} {state.get('error')}")

    # --- over-quota tenant gets a structured 429 with Retry-After
    rejected = False
    for seed in range(20):
        try:
            _post(base, "/v1/simulate",
                  {"model": "resnet50", "gpus": 8, "iterations": 20,
                   "seed": 100 + seed}, tenant="burst-probe")
        except urllib.error.HTTPError as exc:
            if exc.code != 429:
                problems.append(f"quota rejection was {exc.code}, not 429")
            elif not exc.headers.get("Retry-After"):
                problems.append("429 without a Retry-After header")
            else:
                error = json.loads(exc.read())["error"]
                if error.get("code") != "quota" \
                        or not error.get("retry_after_s"):
                    problems.append(f"unstructured 429 body: {error}")
            rejected = True
            break
    if not rejected:
        problems.append("burst of 20 requests never hit the tenant quota")

    # --- metrics: valid exposition + the serving series + occupancy > 1
    status, raw = _get(base, "/metrics")
    text = raw.decode("utf-8")
    problems += [f"metrics: {p}" for p in validate_prometheus_text(text)]
    for series in REQUIRED_SERIES:
        if f"\n{series}" not in f"\n{text}":
            problems.append(f"metrics: missing series {series!r}")
    occupancy = None
    for line in text.splitlines():
        if line.startswith("serving_batch_occupancy"):
            occupancy = float(line.rsplit(" ", 1)[-1])
    if occupancy is None or occupancy <= 1:
        problems.append(
            f"serving_batch_occupancy is {occupancy} — concurrent "
            "compatible requests were not coalesced")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns 0 when the service checks out."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--base", metavar="URL", default=None,
                        help="base URL of an already-running server "
                             "(default: spawn one on an ephemeral port)")
    args = parser.parse_args(argv)

    server = None
    base = args.base
    if base is None:
        # Wide batch window so the three concurrent submissions land in
        # one batch; tight per-tenant quota so the burst probe trips it.
        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--batch-window-ms", "300", "--quota-rps", "0.5",
             "--quota-burst", "8"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env={**os.environ,
                 "PYTHONPATH": os.path.join(REPO_ROOT, "src")})
        line = server.stdout.readline()
        if "listening on" not in line:
            print(f"server did not start: {line!r}", file=sys.stderr)
            return 1
        base = line.strip().rsplit(" ", 1)[-1]
    try:
        problems = check_server(base)
    finally:
        if server is not None:
            server.terminate()
            server.wait(timeout=10)
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"serve ok: {base} — healthz, whatif parity, coalescing, "
              f"quota 429, metrics all verified")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
