"""Reporting: ASCII charts and markdown export."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments import ExperimentResult
from repro.reporting import (
    bar_chart,
    comparison_table,
    line_chart,
    metrics_to_markdown,
    render_metrics,
    scaling_chart,
    to_markdown,
)


@pytest.fixture
def result():
    return ExperimentResult(
        experiment_id="demo",
        title="demo table",
        columns=("model", "scheme", "gpus", "mean_ms"),
        rows=(
            {"model": "m", "scheme": "syncsgd", "gpus": 8, "mean_ms": 10.0},
            {"model": "m", "scheme": "syncsgd", "gpus": 32, "mean_ms": 12.0},
            {"model": "m", "scheme": "powersgd", "gpus": 8, "mean_ms": 15.0},
            {"model": "m", "scheme": "powersgd", "gpus": 32, "mean_ms": 15.5},
        ),
        notes=("a note",),
    )


class TestLineChart:
    def test_renders_all_series(self):
        chart = line_chart({"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]})
        assert "o=a" in chart and "x=b" in chart

    def test_skips_nan_points(self):
        chart = line_chart({"a": [(0, 1), (1, float("nan")), (2, 2)]})
        assert chart  # renders without error

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            line_chart({})
        with pytest.raises(ConfigurationError):
            line_chart({"a": [(0, float("nan"))]})

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ConfigurationError):
            line_chart({"a": [(0, 1)]}, width=5)

    def test_constant_series_ok(self):
        assert line_chart({"a": [(0, 5), (1, 5)]})

    def test_title_and_labels_present(self):
        chart = line_chart({"a": [(0, 1), (10, 2)]}, title="T",
                           x_label="gpus", y_label="ms")
        assert chart.startswith("T")
        assert "gpus" in chart and "(ms)" in chart


class TestBarChart:
    def test_bars_scale(self):
        chart = bar_chart({"big": 100.0, "small": 10.0}, width=20)
        big_row = [l for l in chart.splitlines() if "big" in l][0]
        small_row = [l for l in chart.splitlines() if "small" in l][0]
        assert big_row.count("#") > small_row.count("#")

    def test_nan_rendered(self):
        chart = bar_chart({"oom": float("nan"), "ok": 1.0})
        assert "n/a" in chart

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            bar_chart({})


class TestScalingChart:
    def test_plots_experiment_result(self, result):
        chart = scaling_chart(result, "m")
        assert "syncsgd" in chart and "powersgd" in chart

    def test_unknown_model_rejected(self, result):
        with pytest.raises(ConfigurationError):
            scaling_chart(result, "nope")


class TestMarkdown:
    def test_table_structure(self, result):
        md = to_markdown(result, "{:.1f}")
        lines = md.splitlines()
        assert lines[0].startswith("### demo")
        assert "| model | scheme | gpus | mean_ms |" in md
        assert "| m | syncsgd | 8 | 10.0 |" in md
        assert "*a note*" in md

    def test_column_subset(self, result):
        md = to_markdown(result, columns=("scheme", "mean_ms"))
        assert "model" not in md.splitlines()[2]

    def test_unknown_column_rejected(self, result):
        with pytest.raises(ConfigurationError):
            to_markdown(result, columns=("nope",))

    def test_comparison_table(self):
        rows = [{"name": "a", "base": 10.0, "cand": 8.0}]
        md = comparison_table(rows, "base", "cand", "name")
        assert "+20.0%" in md

    def test_comparison_validates(self):
        with pytest.raises(ConfigurationError):
            comparison_table([], "b", "c", "n")
        with pytest.raises(ConfigurationError):
            comparison_table([{"n": "x", "b": 0.0, "c": 1.0}],
                             "b", "c", "n")


class TestMetricsReport:
    SNAPSHOT = {
        "counters": {'calls{algorithm="ring"}': 4.0, "hits": 2.0},
        "gauges": {"utilization": 0.75},
        "histograms": {"exec_s": {"count": 3, "total": 6.0, "mean": 2.0,
                                  "min": 1.0, "max": 3.0, "p50": 2.0,
                                  "p90": 3.0, "p99": 3.0}},
    }

    def test_render_lists_everything(self):
        text = render_metrics(self.SNAPSHOT)
        lines = text.splitlines()
        assert lines[0] == "metrics:"
        assert '  calls{algorithm="ring"} = 4' in lines
        assert "  utilization = 0.75" in lines
        assert any(line.startswith("  exec_s: count=3 mean=2")
                   for line in lines)

    def test_render_empty_snapshot(self):
        empty = {"counters": {}, "gauges": {}, "histograms": {}}
        assert "(none recorded)" in render_metrics(empty)

    def test_markdown_tables(self):
        md = metrics_to_markdown(self.SNAPSHOT)
        assert "| metric | value |" in md
        assert "| `hits` | 2 |" in md
        assert "| `exec_s` | 3 | 2 |" in md

    def test_markdown_empty_snapshot(self):
        empty = {"counters": {}, "gauges": {}, "histograms": {}}
        assert metrics_to_markdown(empty) == "*(no metrics recorded)*"

    def test_non_snapshot_rejected(self):
        with pytest.raises(ConfigurationError):
            render_metrics({"counters": {}})
        with pytest.raises(ConfigurationError):
            metrics_to_markdown({})
