"""Model zoo: metadata-only specs of the paper's DNN workloads."""

from .flops import (
    BACKWARD_FLOP_RATIO,
    attention_flops,
    conv2d_flops,
    linear_flops,
    norm_flops,
    pool_flops,
)
from .custom import mlp_model, scaled_model, simple_cnn
from .layers import LayerSpec, ModelSpec
from .resnet import build_resnet, resnet50, resnet101, resnet152
from .transformer import (
    BERT_BASE_CONFIG,
    BERT_LARGE_CONFIG,
    GPT2_SMALL_CONFIG,
    TransformerConfig,
    bert_base,
    bert_large,
    build_transformer,
    gpt2_small,
)
from .vgg import vgg16
from .zoo import PAPER_MODELS, available_models, get_model, register_model

__all__ = [
    "LayerSpec", "ModelSpec",
    "conv2d_flops", "linear_flops", "attention_flops", "norm_flops",
    "pool_flops", "BACKWARD_FLOP_RATIO",
    "build_resnet", "resnet50", "resnet101", "resnet152",
    "TransformerConfig", "build_transformer", "bert_base", "bert_large",
    "gpt2_small", "BERT_BASE_CONFIG", "BERT_LARGE_CONFIG",
    "GPT2_SMALL_CONFIG", "vgg16",
    "get_model", "available_models", "register_model", "PAPER_MODELS",
    "mlp_model", "simple_cnn", "scaled_model",
]
