"""Admission control for the serving scheduler.

Two mechanisms, both enforced *before* a request enters the queue so an
overloaded server sheds work at the door instead of timing it out
later:

* a per-tenant **token bucket** (``quota_rps`` sustained, ``burst``
  peak) — over-quota submissions are rejected with a computed
  ``Retry-After``;
* a global **queue-depth cap** — a full admission queue rejects with
  503 so load balancers can fail over to another replica.

Both rejections raise :class:`AdmissionError`, which carries the HTTP
status and a machine-readable reason the HTTP layer serializes into the
structured error body.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable, Dict, Optional

from ..errors import ConfigurationError, ReproError


class AdmissionError(ReproError):
    """A request the scheduler refused to admit.

    Attributes:
        status: HTTP status the rejection maps to (429 for quota, 503
            for a full queue).
        reason: Machine-readable label (``"quota"``, ``"queue_full"``,
            ``"closed"``) — also the ``reason`` label on the
            ``serving_rejected_total`` counter.
        retry_after_s: Seconds until a retry can succeed, or ``None``
            when the server cannot predict one (queue full).
    """

    def __init__(self, message: str, status: int, reason: str,
                 retry_after_s: Optional[float] = None):
        """Store the HTTP mapping alongside the human-readable message."""
        super().__init__(message)
        self.status = status
        self.reason = reason
        self.retry_after_s = retry_after_s


class TokenBucket:
    """Classic token bucket: ``rate_per_s`` sustained, ``burst`` peak.

    Thread-safe; time comes from an injectable monotonic ``clock`` so
    tests can drive refills deterministically.
    """

    def __init__(self, rate_per_s: float, burst: float,
                 clock: Callable[[], float] = time.monotonic):
        """Start full: a fresh bucket allows an immediate burst."""
        if rate_per_s <= 0:
            raise ConfigurationError(
                f"rate_per_s must be positive, got {rate_per_s}")
        if burst < 1:
            raise ConfigurationError(f"burst must be >= 1, got {burst}")
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._stamp)
        self._tokens = min(self.burst,
                           self._tokens + elapsed * self.rate_per_s)
        self._stamp = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        with self._lock:
            self._refill(self._clock())
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def retry_after_s(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will be available at current rate."""
        with self._lock:
            self._refill(self._clock())
            deficit = tokens - self._tokens
            if deficit <= 0:
                return 0.0
            return deficit / self.rate_per_s


class TenantQuotas:
    """Per-tenant token buckets, created lazily on first submission.

    ``rate_per_s=None`` disables quota enforcement entirely (the
    default for `repro serve` — a single-user dev server should not
    throttle itself).
    """

    def __init__(self, rate_per_s: Optional[float], burst: float,
                 clock: Callable[[], float] = time.monotonic):
        """Shared policy for all tenants; buckets materialize lazily."""
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        """Whether submissions are metered at all."""
        return self.rate_per_s is not None

    def check(self, tenant: str) -> None:
        """Admit one request for ``tenant`` or raise a 429
        :class:`AdmissionError` with ``retry_after_s`` filled in."""
        if self.rate_per_s is None:
            return
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(self.rate_per_s, self.burst,
                                     clock=self._clock)
                self._buckets[tenant] = bucket
        if bucket.try_acquire():
            return
        retry_after = bucket.retry_after_s()
        raise AdmissionError(
            f"tenant {tenant!r} over quota "
            f"({self.rate_per_s:g} req/s, burst {self.burst:g}); "
            f"retry in {retry_after:.2f} s",
            status=429, reason="quota",
            retry_after_s=math.ceil(retry_after * 100) / 100)
