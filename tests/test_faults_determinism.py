"""The fault subsystem's determinism contract (docs/faults.md).

Four guarantees: same schedule ⇒ same outcome regardless of execution
mode; fault draws never touch the jitter RNG; an empty schedule is
bit-identical to no schedule (including cache keys); a non-empty
schedule changes the cache key.
"""

import pytest

from repro.engine import ExperimentEngine, SimJob
from repro.faults import FaultSchedule, NodeFault, StragglerFault
from repro.hardware import cluster_for_gpus
from repro.models import get_model
from repro.simulator import DDPSimulator

#: Fault-free reference means (resnet50, 32 GPUs, batch 64,
#: iterations=30, warmup=5, seed 0) recorded before the fault subsystem
#: existed.  If these drift, attaching ``faults=None`` perturbed the
#: fault-free path — exactly the regression this file exists to catch.
SYNCSGD_REFERENCE_MEAN = 0.1701013147331283


def _schedule():
    return FaultSchedule(
        seed=3,
        stragglers=[StragglerFault(worker=0, slowdown=2.0,
                                   start_iteration=4,
                                   duration_iterations=4)],
        nodes=[NodeFault(node=0, factor=0.5, start_iteration=8)])


class TestScheduleDeterminism:
    def test_same_schedule_same_result(self, resnet50):
        cluster = cluster_for_gpus(8)
        runs = [
            DDPSimulator(resnet50, cluster, faults=_schedule()).run(
                batch_size=64, iterations=12, warmup=2)
            for _ in range(2)
        ]
        assert runs[0].sync_times == runs[1].sync_times
        assert runs[0].iteration_times == runs[1].iteration_times

    def test_serial_and_parallel_sweeps_identical(self, resnet50):
        jobs = [
            SimJob(model=resnet50, cluster=cluster_for_gpus(gpus),
                   faults=_schedule(), batch_size=64,
                   iterations=10, warmup=2)
            for gpus in (4, 8, 12, 16)
        ]
        serial = ExperimentEngine(jobs=1).run_outcomes(jobs)
        parallel = ExperimentEngine(jobs=2).run_outcomes(jobs)
        for s, p in zip(serial, parallel):
            assert s.unwrap().sync_times == p.unwrap().sync_times

    def test_empty_schedule_bit_identical_to_none(self, resnet50):
        cluster = cluster_for_gpus(32)
        protocol = dict(batch_size=64, iterations=30, warmup=5)
        bare = DDPSimulator(resnet50, cluster).run(**protocol)
        empty = DDPSimulator(resnet50, cluster,
                             faults=FaultSchedule()).run(**protocol)
        assert bare.sync_times == empty.sync_times
        assert bare.iteration_times == empty.iteration_times

    def test_fault_free_numerics_unchanged(self, resnet50):
        result = DDPSimulator(resnet50, cluster_for_gpus(32)).run(
            batch_size=64, iterations=30, warmup=5)
        assert result.mean == SYNCSGD_REFERENCE_MEAN


class TestCacheKeyBehaviour:
    def _job(self, model, **kwargs):
        return SimJob(model=model, cluster=cluster_for_gpus(8),
                      batch_size=64, iterations=12, warmup=2, **kwargs)

    def test_no_faults_and_empty_schedule_share_a_key(self, resnet50):
        bare = self._job(resnet50)
        empty = self._job(resnet50, faults=FaultSchedule())
        assert bare.fingerprint() == empty.fingerprint()

    def test_empty_schedule_seed_does_not_leak_into_key(self, resnet50):
        # A schedule with nothing to inject is the identity no matter
        # its seed; only actual faults may change the key.
        assert (self._job(resnet50, faults=FaultSchedule(seed=99))
                .fingerprint()
                == self._job(resnet50).fingerprint())

    def test_nonempty_schedule_changes_the_key(self, resnet50):
        assert (self._job(resnet50, faults=_schedule()).fingerprint()
                != self._job(resnet50).fingerprint())

    def test_different_schedules_key_differently(self, resnet50):
        a = self._job(resnet50, faults=_schedule())
        b = self._job(resnet50, faults=FaultSchedule(
            seed=3, stragglers=[StragglerFault(worker=0, slowdown=2.5)]))
        assert a.fingerprint() != b.fingerprint()

    def test_schedule_seed_is_part_of_the_key(self, resnet50):
        mk = lambda seed: self._job(resnet50, faults=FaultSchedule(  # noqa: E731
            seed=seed,
            stragglers=[StragglerFault(worker=0, slowdown=2.0)]))
        assert mk(1).fingerprint() != mk(2).fingerprint()

    def test_faulted_results_cached_separately(self, resnet50, tmp_path):
        from repro.engine import SimulationCache
        engine = ExperimentEngine(cache=SimulationCache(tmp_path))
        bare = self._job(resnet50)
        faulted = self._job(resnet50, faults=_schedule())
        first = engine.run_outcomes([bare, faulted])
        second = engine.run_outcomes([bare, faulted])
        assert all(o.cached for o in second)
        assert second[0].unwrap().mean == first[0].unwrap().mean
        assert second[1].unwrap().mean == first[1].unwrap().mean
        assert first[0].unwrap().mean != first[1].unwrap().mean


class TestRetransmitRNGIsolation:
    def test_jitter_unperturbed_by_retransmit_policy(self, resnet50):
        # drop_rate 0 means the policy never draws; the run must be
        # bit-identical to fault-free even though a schedule is attached
        # and resolved every iteration.
        from repro.faults import RetransmitFault
        cluster = cluster_for_gpus(8)
        bare = DDPSimulator(resnet50, cluster).run(
            batch_size=64, iterations=10, warmup=2)
        armed = DDPSimulator(resnet50, cluster, faults=FaultSchedule(
            retransmits=[RetransmitFault(drop_rate=0.0)])).run(
            batch_size=64, iterations=10, warmup=2)
        assert bare.sync_times == armed.sync_times
