"""Ideal-scaling analysis (§5: Figures 9 and 10).

**Figure 9 — how much compression is actually needed.**  Under weak
scaling, per-iteration time stays flat iff communication hides entirely
under computation.  With the §5 simplifications (whole gradient in one
overlappable bucket, all-reduce-compatible compression, encode cost
ignored), the threshold is ``T_comp = T_comm(ĝ, p, BW)``; solving for the
communicable size ``ĝ`` gives the *required* compression ratio
``g / ĝ`` — which comes out small (< 7x at 10 Gbit/s even for small
batches, < 2x for BERT), the paper's "no utility in overcompressing"
finding.

**Figure 10 — the headroom available to compression.**  The gap between
the syncSGD model's prediction and the ideal ``T_comp`` bounds how much
time an encode/decode step may spend before it cannot win at all: ~50 ms
for ResNet-50, ~100 ms for ResNet-101, ~200 ms for BERT at 10 Gbit/s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..compute import ComputeModel
from ..errors import ConfigurationError
from ..hardware import GPUSpec, V100
from ..models import ModelSpec
from .grid import backward_time_grid, syncsgd_time_grid
from .perf_model import PerfModelInputs


@dataclass(frozen=True)
class RequiredCompression:
    """Figure-9 style result for one configuration."""

    model: str
    batch_size: int
    world_size: int
    bandwidth_bytes_per_s: float
    compute_time_s: float
    communicable_bytes: float
    required_ratio: float


def communicable_bytes(t_comp: float, world_size: int,
                       bandwidth_bytes_per_s: float,
                       alpha_s: float = 10e-6) -> float:
    """Solve ``ring_allreduce_time(g, p, BW) == t_comp`` for ``g``.

    Inverts Equation (1): ``t = 2α(p-1) + 2g(p-1)/(p·BW)``.  Returns 0
    when latency alone already exceeds the compute time (no amount of
    compression achieves linear scaling there).
    """
    if t_comp <= 0:
        raise ConfigurationError(f"t_comp must be > 0, got {t_comp}")
    if world_size < 2:
        return float("inf")  # a single worker communicates nothing
    p = world_size
    budget = t_comp - 2.0 * alpha_s * (p - 1)
    if budget <= 0:
        return 0.0
    return budget * p * bandwidth_bytes_per_s / (2.0 * (p - 1))


def required_compression(model: ModelSpec, batch_size: int,
                         world_size: int, bandwidth_bytes_per_s: float,
                         gpu: GPUSpec = V100,
                         alpha_s: float = 10e-6) -> RequiredCompression:
    """Figure 9: the compression ratio needed for near-linear scaling."""
    compute = ComputeModel(model, gpu)
    t_comp = compute.backward_time(batch_size)
    g_hat = communicable_bytes(t_comp, world_size, bandwidth_bytes_per_s,
                               alpha_s)
    if g_hat == 0.0:
        ratio = float("inf")
    elif g_hat == float("inf") or g_hat >= model.grad_bytes:
        ratio = 1.0  # no compression needed at all
    else:
        ratio = model.grad_bytes / g_hat
    return RequiredCompression(
        model=model.name,
        batch_size=batch_size,
        world_size=world_size,
        bandwidth_bytes_per_s=bandwidth_bytes_per_s,
        compute_time_s=t_comp,
        communicable_bytes=g_hat,
        required_ratio=ratio,
    )


def required_compression_curve(model: ModelSpec,
                               batch_sizes: Sequence[int],
                               world_size: int,
                               bandwidth_bytes_per_s: float,
                               gpu: GPUSpec = V100,
                               alpha_s: float = 10e-6,
                               ) -> Tuple[RequiredCompression, ...]:
    """Figure 9 over a whole batch-size sweep in one grid-kernel call.

    Each returned row is bit-identical to
    :func:`required_compression` at the same batch size: the backward
    times come from :func:`repro.core.grid.backward_time_grid` (the
    vectorized twin of the scalar compute model) and the
    Equation-(1) inversion is applied elementwise in the scalar
    function's operation order.
    """
    batches = [int(b) for b in batch_sizes]
    if not batches:
        return ()
    bs = np.asarray(batches)
    if int(bs.min()) < 1:
        raise ConfigurationError(
            f"{model.name}: batch_size must be >= 1, got {int(bs.min())}")
    t_comp = backward_time_grid(model, gpu, bs, np.asarray(1.0))

    if world_size < 2:
        g_hat = np.full(t_comp.shape, float("inf"))
    else:
        p = world_size
        budget = t_comp - 2.0 * alpha_s * (p - 1)
        with np.errstate(divide="ignore"):
            g_hat = np.where(
                budget <= 0, 0.0,
                budget * p * bandwidth_bytes_per_s / (2.0 * (p - 1)))
    grad = model.grad_bytes
    with np.errstate(divide="ignore"):
        ratio = np.where(
            g_hat == 0.0, float("inf"),
            np.where(g_hat >= grad, 1.0,
                     grad / np.where(g_hat == 0.0, 1.0, g_hat)))
    return tuple(
        RequiredCompression(
            model=model.name,
            batch_size=batch,
            world_size=world_size,
            bandwidth_bytes_per_s=bandwidth_bytes_per_s,
            compute_time_s=float(t_comp[i]),
            communicable_bytes=float(g_hat[i]),
            required_ratio=float(ratio[i]),
        )
        for i, batch in enumerate(batches))


@dataclass(frozen=True)
class HeadroomPoint:
    """Figure-10 style result: syncSGD's gap to ideal at one scale."""

    world_size: int
    ideal_s: float
    syncsgd_s: float

    @property
    def headroom_s(self) -> float:
        """Seconds a compression scheme may spend (encode + decode +
        compressed comm) and still beat syncSGD."""
        return max(0.0, self.syncsgd_s - self.ideal_s)


def headroom_curve(model: ModelSpec, world_sizes: Sequence[int],
                   bandwidth_bytes_per_s: float,
                   batch_size: Optional[int] = None,
                   gpu: GPUSpec = V100, alpha_s: float = 10e-6,
                   gamma: float = 1.10) -> Tuple[HeadroomPoint, ...]:
    """Figure 10: gap between optimized syncSGD and ideal scaling.

    Ideal weak scaling keeps per-iteration sync time at the standalone
    backward time ``T_comp``; the gap to the §4.1 prediction is the
    encode/decode budget available to any compression scheme.
    """
    compute = ComputeModel(model, gpu)
    bs = batch_size if batch_size is not None else model.default_batch_size
    ideal = compute.backward_time(bs)
    sizes = [int(p) for p in world_sizes]
    if not sizes:
        return ()
    # One grid-kernel call over the world-size axis; each cell is
    # bit-identical to the scalar syncsgd_time at that scale.
    inputs = PerfModelInputs(
        world_size=sizes[0], bandwidth_bytes_per_s=bandwidth_bytes_per_s,
        alpha_s=alpha_s, gamma=gamma, batch_size=bs)
    grid = syncsgd_time_grid(model, inputs, gpu,
                             world_size=np.asarray(sizes))
    return tuple(
        HeadroomPoint(world_size=p, ideal_s=ideal,
                      syncsgd_s=float(grid.total[i]))
        for i, p in enumerate(sizes))
