"""Experiment engine: parallel fan-out must be invisible in results."""

import pytest

from repro.compression.schemes import (
    PowerSGDScheme,
    SignSGDScheme,
    TopKScheme,
)
from repro.engine import ExperimentEngine, SimJob, SimulationCache
from repro.errors import ConfigurationError, OutOfMemoryError
from repro.experiments.scaling import run_scaling_sweep
from repro.hardware import cluster_for_gpus
from repro.models import get_model


@pytest.fixture(scope="module")
def small_grid():
    """A mixed batch: two models, three schemes, one OOM point."""
    rn50 = get_model("resnet50")
    bert = get_model("bert-base")
    jobs = [
        SimJob(model=rn50, cluster=cluster_for_gpus(8),
               scheme=scheme, batch_size=64, iterations=8, warmup=2)
        for scheme in (None, PowerSGDScheme(4), TopKScheme(0.01))
    ]
    jobs.append(SimJob(model=bert, cluster=cluster_for_gpus(16),
                       scheme=PowerSGDScheme(4), batch_size=12,
                       iterations=8, warmup=2))
    jobs.append(SimJob(model=bert, cluster=cluster_for_gpus(48),
                       scheme=SignSGDScheme(), batch_size=12,
                       iterations=8, warmup=2))  # deterministic OOM
    return jobs


def _comparable(outcomes):
    """Project outcomes onto (describe, sync_times | oom bytes)."""
    rows = []
    for outcome in outcomes:
        if outcome.oom is not None:
            rows.append((outcome.job.describe(), "oom",
                         outcome.oom.required_bytes))
        else:
            rows.append((outcome.job.describe(),
                         outcome.result.sync_times))
    return rows


class TestParallelEquivalence:
    def test_parallel_rows_identical_to_serial(self, small_grid):
        serial = ExperimentEngine(jobs=1).run_outcomes(small_grid)
        fanned = ExperimentEngine(jobs=4).run_outcomes(small_grid)
        assert _comparable(serial) == _comparable(fanned)

    def test_parallel_with_cache_identical(self, small_grid, tmp_path):
        serial = ExperimentEngine().run_outcomes(small_grid)
        cache = SimulationCache(str(tmp_path))
        engine = ExperimentEngine(jobs=4, cache=cache)
        cold = engine.run_outcomes(small_grid)
        warm = engine.run_outcomes(small_grid)
        assert _comparable(cold) == _comparable(serial)
        assert _comparable(warm) == _comparable(serial)
        assert all(o.cached for o in warm)
        assert cache.stats.hits == len(small_grid)
        assert engine.executed == len(small_grid)  # cold misses only

    def test_scaling_sweep_engine_matches_default(self):
        kwargs = dict(
            experiment_id="t", title="t",
            schemes=[PowerSGDScheme(4)],
            workloads=[("resnet50", 64)], gpu_counts=[8, 16],
            iterations=6, warmup=1)
        default = run_scaling_sweep(**kwargs)
        fanned = run_scaling_sweep(
            engine=ExperimentEngine(jobs=2), **kwargs)
        assert default.rows == fanned.rows
        assert default.notes == fanned.notes

    def test_outcomes_preserve_input_order(self, small_grid):
        outcomes = ExperimentEngine(jobs=4).run_outcomes(small_grid)
        assert [o.job.describe() for o in outcomes] \
            == [j.describe() for j in small_grid]


class TestEngineProtocol:
    def test_jobs_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentEngine(jobs=0)

    def test_run_raises_cached_oom(self, small_grid):
        oom_job = small_grid[-1]
        engine = ExperimentEngine()
        with pytest.raises(OutOfMemoryError):
            engine.run(oom_job)

    def test_invalid_job_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            SimJob(model=get_model("resnet50"),
                   cluster=cluster_for_gpus(8), iterations=5, warmup=5)

    def test_empty_batch(self):
        assert ExperimentEngine(jobs=4).run_outcomes([]) == []

    def test_busy_and_executed_counters(self, small_grid):
        engine = ExperimentEngine()
        engine.run_outcomes(small_grid)
        assert engine.executed == len(small_grid)
        assert engine.busy_s > 0.0
