"""Figure 7 / §3.3: batch size erodes PowerSGD's advantage."""

from repro.experiments import run_fig7


def test_fig7_batch_size_effect(run_once, show):
    result = run_once(run_fig7, iterations=110, warmup=10)
    show(result, "{:.3f}")

    # --- ResNet-101 at 64 GPUs: ~+40% at bs16, ~+20% at bs32,
    # ~-10% at bs64 (paper's §3.3 numbers; we assert bands).
    s16 = result.single(model="resnet101", batch_size=16)["speedup"]
    s32 = result.single(model="resnet101", batch_size=32)["speedup"]
    s64 = result.single(model="resnet101", batch_size=64)["speedup"]
    assert 0.25 < s16 < 0.55
    assert 0.10 < s32 < 0.40
    assert -0.20 < s64 < 0.05
    assert s16 > s32 > s64

    # --- BERT at 64 GPUs: +24% at bs10 dropping to +18% at bs12.
    b10 = result.single(model="bert-base", batch_size=10)["speedup"]
    b12 = result.single(model="bert-base", batch_size=12)["speedup"]
    assert b10 > b12
    assert 0.15 < b12 < 0.35
    assert 0.20 < b10 < 0.45
