"""Figure 9: how much compression linear scaling actually requires.

For each model and batch size, solve for the gradient size whose
all-reduce hides entirely under the backward pass, and report the implied
compression ratio.  The paper's finding, asserted by the benchmark: at
10 Gbit/s, even small batches need at most ~7x compression, and BERT at
its default batch needs < 2x — orders of magnitude below what compression
papers advertise (>100x).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from ..core import required_compression_curve
from ..models import get_model
from ..units import gbps_to_bytes_per_s
from .runner import ExperimentResult

#: (model, batch sizes) the figure sweeps.
FIG9_WORKLOADS: Tuple[Tuple[str, Tuple[int, ...]], ...] = (
    ("resnet50", (8, 16, 32, 64)),
    ("resnet101", (8, 16, 32, 64)),
    ("bert-base", (2, 4, 8, 12)),
)

#: Bandwidths (Gbit/s) shown in the figure panels.
FIG9_BANDWIDTHS_GBPS: Tuple[float, ...] = (10.0, 25.0)


def run_fig9(num_gpus: int = 64,
             workloads: Sequence[Tuple[str, Tuple[int, ...]]] = FIG9_WORKLOADS,
             bandwidths_gbps: Sequence[float] = FIG9_BANDWIDTHS_GBPS,
             ) -> ExperimentResult:
    """Required compression ratios across batch sizes and bandwidths.

    Each batch-size sweep is one call into the vectorized
    :func:`repro.core.required_compression_curve` (bit-identical rows
    to the scalar per-point solver it replaced).
    """
    rows: List[Dict[str, Any]] = []
    for model_name, batch_sizes in workloads:
        model = get_model(model_name)
        for gbps in bandwidths_gbps:
            for rc in required_compression_curve(
                    model, batch_sizes, num_gpus,
                    gbps_to_bytes_per_s(gbps)):
                rows.append({
                    "model": model_name,
                    "bandwidth_gbps": gbps,
                    "batch_size": rc.batch_size,
                    "t_comp_ms": rc.compute_time_s * 1e3,
                    "required_ratio": rc.required_ratio,
                })
    return ExperimentResult(
        experiment_id="fig9",
        title=(f"Compression required for near-linear weak scaling "
               f"({num_gpus} GPUs)"),
        columns=("model", "bandwidth_gbps", "batch_size", "t_comp_ms",
                 "required_ratio"),
        rows=tuple(rows),
    )
