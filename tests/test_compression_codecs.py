"""Single-tensor codecs: round trips, wire sizes, invariants."""

import numpy as np
import pytest

from repro.compression import (
    ATOMOCompressor,
    DGCCompressor,
    FP16Compressor,
    FP32Compressor,
    GradiVeqCompressor,
    OneBitCompressor,
    PowerSGDCompressor,
    QSGDCompressor,
    RandomKCompressor,
    SignSGDCompressor,
    TernGradCompressor,
    TopKCompressor,
    make_compressor,
)
from repro.errors import CompressionError


class TestFP32:
    def test_lossless(self, rng):
        codec = FP32Compressor()
        g = rng.normal(size=(7, 5))
        np.testing.assert_array_equal(codec.decode(codec.encode(g)), g)

    def test_wire_is_4_bytes_per_elem(self, rng):
        payload = FP32Compressor().encode(rng.normal(size=100))
        assert payload.wire_bytes == 400

    def test_ratio_is_one(self, rng):
        assert FP32Compressor().compression_ratio(
            rng.normal(size=64)) == pytest.approx(1.0)


class TestFP16:
    def test_near_lossless_at_sane_scales(self, rng):
        codec = FP16Compressor()
        g = rng.normal(size=1000)
        decoded = codec.decode(codec.encode(g))
        assert np.abs(decoded - g).max() < 1e-2

    def test_2x_ratio(self, rng):
        assert FP16Compressor().compression_ratio(
            rng.normal(size=64)) == pytest.approx(2.0)

    def test_overflow_saturates(self):
        codec = FP16Compressor()
        g = np.array([1e30, -1e30, 1.0])
        decoded = codec.decode(codec.encode(g))
        assert np.all(np.isfinite(decoded))


class TestSignSGD:
    def test_decode_is_unit_signs(self, rng):
        codec = SignSGDCompressor()
        g = rng.normal(size=100)
        decoded = codec.decode(codec.encode(g))
        assert set(np.unique(decoded)) <= {-1.0, 1.0}
        np.testing.assert_array_equal(np.sign(decoded),
                                      np.where(g >= 0, 1.0, -1.0))

    def test_32x_compression(self, rng):
        g = rng.normal(size=256)
        assert SignSGDCompressor().compression_ratio(g) == pytest.approx(32.0)

    def test_non_multiple_of_8_sizes(self, rng):
        codec = SignSGDCompressor()
        for n in (1, 7, 9, 13):
            g = rng.normal(size=n)
            assert codec.decode(codec.encode(g)).size == n

    def test_zero_maps_to_positive(self):
        codec = SignSGDCompressor()
        decoded = codec.decode(codec.encode(np.array([0.0, -0.1])))
        assert decoded[0] == 1.0
        assert decoded[1] == -1.0

    def test_preserves_shape(self, rng):
        codec = SignSGDCompressor()
        g = rng.normal(size=(4, 6, 2))
        assert codec.decode(codec.encode(g)).shape == (4, 6, 2)


class TestTopK:
    def test_keeps_largest_magnitudes(self):
        codec = TopKCompressor(fraction=0.25)
        g = np.array([0.1, -5.0, 0.2, 3.0, -0.3, 0.05, 1.0, 0.0])
        decoded = codec.decode(codec.encode(g))
        np.testing.assert_array_equal(
            np.flatnonzero(decoded), np.array([1, 3]))
        assert decoded[1] == -5.0 and decoded[3] == 3.0

    def test_density_respected(self, rng):
        codec = TopKCompressor(fraction=0.1)
        g = rng.normal(size=1000)
        decoded = codec.decode(codec.encode(g))
        assert np.count_nonzero(decoded) == 100

    def test_at_least_one_kept(self, rng):
        codec = TopKCompressor(fraction=0.001)
        decoded = codec.decode(codec.encode(rng.normal(size=10)))
        assert np.count_nonzero(decoded) == 1

    def test_wire_counts_values_and_indices(self, rng):
        payload = TopKCompressor(fraction=0.1).encode(rng.normal(size=1000))
        assert payload.wire_bytes == 100 * (4 + 4)

    def test_invalid_fraction(self):
        with pytest.raises(CompressionError):
            TopKCompressor(fraction=0.0)
        with pytest.raises(CompressionError):
            TopKCompressor(fraction=1.5)


class TestRandomK:
    def test_shared_seed_selects_same_indices(self, rng):
        a = RandomKCompressor(fraction=0.2, seed=42)
        b = RandomKCompressor(fraction=0.2, seed=42)
        g1, g2 = rng.normal(size=100), rng.normal(size=100)
        d1 = a.decode(a.encode(g1))
        d2 = b.decode(b.encode(g2))
        np.testing.assert_array_equal(np.flatnonzero(d1),
                                      np.flatnonzero(d2))

    def test_advance_round_changes_selection(self, rng):
        codec = RandomKCompressor(fraction=0.1, seed=0)
        g = rng.normal(size=200)
        first = np.flatnonzero(codec.decode(codec.encode(g)))
        codec.advance_round()
        second = np.flatnonzero(codec.decode(codec.encode(g)))
        assert not np.array_equal(first, second)

    def test_unbiased_scaling(self, rng):
        # E[decoded] = g: kept values are scaled by 1/fraction.
        codec = RandomKCompressor(fraction=0.5, seed=1)
        g = np.ones(100)
        decoded = codec.decode(codec.encode(g))
        assert decoded[decoded != 0][0] == pytest.approx(2.0)

    def test_values_only_on_wire(self, rng):
        payload = RandomKCompressor(fraction=0.1).encode(
            rng.normal(size=1000))
        assert payload.wire_bytes == 100 * 4


class TestDGC:
    def test_density_approximately_respected(self, rng):
        codec = DGCCompressor(fraction=0.05, seed=0)
        g = rng.normal(size=5000)
        decoded = codec.decode(codec.encode(g))
        density = np.count_nonzero(decoded) / g.size
        assert 0.01 < density < 0.15

    def test_kept_values_exceed_dropped(self, rng):
        codec = DGCCompressor(fraction=0.05, seed=0)
        g = rng.normal(size=2000)
        decoded = codec.decode(codec.encode(g))
        kept = np.abs(g[decoded != 0])
        dropped = np.abs(g[decoded == 0])
        # Sampled threshold: kept minimum should be near dropped maximum.
        assert kept.min() > np.quantile(dropped, 0.8)

    def test_constant_tensor_keeps_something(self):
        codec = DGCCompressor(fraction=0.01, seed=0)
        decoded = codec.decode(codec.encode(np.full(100, 2.0)))
        assert np.count_nonzero(decoded) >= 1


class TestQSGD:
    def test_unbiased_in_expectation(self, rng):
        codec = QSGDCompressor(levels=4, seed=0)
        g = rng.normal(size=50)
        decoded = np.mean(
            [codec.decode(codec.encode(g)) for _ in range(400)], axis=0)
        np.testing.assert_allclose(decoded, g, atol=0.25)

    def test_zero_tensor_rejected_as_nonfinite_safe(self):
        codec = QSGDCompressor(levels=4)
        decoded = codec.decode(codec.encode(np.zeros(16)))
        np.testing.assert_array_equal(decoded, np.zeros(16))

    def test_more_levels_less_error(self, rng):
        g = rng.normal(size=2000)
        coarse = QSGDCompressor(levels=2, seed=0)
        fine = QSGDCompressor(levels=256, seed=0)
        err_coarse = np.linalg.norm(coarse.decode(coarse.encode(g)) - g)
        err_fine = np.linalg.norm(fine.decode(fine.encode(g)) - g)
        assert err_fine < err_coarse

    def test_invalid_levels(self):
        with pytest.raises(CompressionError):
            QSGDCompressor(levels=0)


class TestTernGrad:
    def test_three_values_times_scale(self, rng):
        codec = TernGradCompressor(seed=0)
        g = rng.normal(size=500)
        decoded = codec.decode(codec.encode(g))
        scale = np.abs(g).max()
        unique = set(np.round(np.unique(decoded) / scale, 9))
        assert unique <= {-1.0, 0.0, 1.0}

    def test_unbiased_in_expectation(self, rng):
        codec = TernGradCompressor(seed=0)
        g = rng.normal(size=30)
        decoded = np.mean(
            [codec.decode(codec.encode(g)) for _ in range(600)], axis=0)
        np.testing.assert_allclose(decoded, g, atol=0.35)

    def test_zero_tensor(self):
        codec = TernGradCompressor()
        np.testing.assert_array_equal(
            codec.decode(codec.encode(np.zeros(8))), np.zeros(8))


class TestOneBit:
    def test_decode_uses_two_centroids(self, rng):
        codec = OneBitCompressor()
        g = rng.normal(size=1000)
        decoded = codec.decode(codec.encode(g))
        assert len(np.unique(decoded)) == 2
        # Centroids preserve the mean of each half.
        assert decoded[g >= 0].mean() == pytest.approx(g[g >= 0].mean())
        assert decoded[g < 0].mean() == pytest.approx(g[g < 0].mean())

    def test_all_positive_tensor(self):
        codec = OneBitCompressor()
        g = np.array([1.0, 2.0, 3.0])
        decoded = codec.decode(codec.encode(g))
        assert decoded.mean() == pytest.approx(2.0)


class TestPowerSGD:
    def test_rank_capped_by_shape(self, rng):
        codec = PowerSGDCompressor(rank=16)
        payload = codec.encode(rng.normal(size=(4, 100)))
        p_hat, q = payload.arrays
        assert p_hat.shape == (4, 4)

    def test_exact_for_low_rank_matrix(self, rng):
        u = rng.normal(size=(20, 2))
        v = rng.normal(size=(2, 30))
        g = u @ v  # exactly rank 2
        codec = PowerSGDCompressor(rank=2, seed=0)
        decoded = codec.decode(codec.encode(g))
        np.testing.assert_allclose(decoded, g, atol=1e-8)

    def test_error_decreases_with_rank(self, rng):
        g = rng.normal(size=(64, 64))
        errs = []
        for r in (1, 4, 16):
            codec = PowerSGDCompressor(rank=r, seed=0)
            errs.append(np.linalg.norm(codec.decode(codec.encode(g)) - g))
        assert errs[0] > errs[1] > errs[2]

    def test_1d_tensor_treated_as_row(self, rng):
        codec = PowerSGDCompressor(rank=4)
        g = rng.normal(size=50)
        assert codec.decode(codec.encode(g)).shape == (50,)

    def test_4d_conv_tensor_reshaped(self, rng):
        codec = PowerSGDCompressor(rank=4)
        g = rng.normal(size=(8, 4, 3, 3))
        assert codec.decode(codec.encode(g)).shape == (8, 4, 3, 3)

    def test_wire_bytes(self, rng):
        payload = PowerSGDCompressor(rank=4).encode(
            rng.normal(size=(32, 64)))
        assert payload.wire_bytes == (32 * 4 + 64 * 4) * 4


class TestATOMO:
    def test_svd_reconstruction_optimal(self, rng):
        g = rng.normal(size=(30, 40))
        atomo = ATOMOCompressor(rank=8)
        power = PowerSGDCompressor(rank=8, seed=0)
        err_atomo = np.linalg.norm(atomo.decode(atomo.encode(g)) - g)
        err_power = np.linalg.norm(power.decode(power.encode(g)) - g)
        # SVD is the optimal rank-r approximation.
        assert err_atomo <= err_power + 1e-9

    def test_exact_for_low_rank(self, rng):
        g = rng.normal(size=(20, 3)) @ rng.normal(size=(3, 25))
        codec = ATOMOCompressor(rank=3)
        np.testing.assert_allclose(codec.decode(codec.encode(g)), g,
                                   atol=1e-8)


class TestGradiVeq:
    def test_projection_is_linear(self, rng):
        codec = GradiVeqCompressor(block=32, dims=8, seed=0)
        a, b = rng.normal(size=128), rng.normal(size=128)
        pa = codec.encode(a).arrays[0]
        pb = codec.encode(b).arrays[0]
        pab = codec.encode(a + b).arrays[0]
        np.testing.assert_allclose(pab, pa + pb, rtol=1e-9)

    def test_round_trip_is_projection(self, rng):
        # Projecting twice equals projecting once (idempotent).
        codec = GradiVeqCompressor(block=16, dims=4, seed=0)
        g = rng.normal(size=64)
        once = codec.decode(codec.encode(g))
        twice = codec.decode(codec.encode(once))
        np.testing.assert_allclose(once, twice, atol=1e-9)

    def test_padding_for_non_multiple(self, rng):
        codec = GradiVeqCompressor(block=16, dims=4)
        g = rng.normal(size=37)
        assert codec.decode(codec.encode(g)).size == 37

    def test_dims_exceeding_block_rejected(self):
        with pytest.raises(CompressionError):
            GradiVeqCompressor(block=8, dims=16)


class TestCodecValidation:
    @pytest.mark.parametrize("name", [
        "fp32", "fp16", "signsgd", "topk", "randomk", "dgc", "qsgd",
        "terngrad", "onebit", "powersgd", "atomo", "gradiveq"])
    def test_rejects_empty(self, name):
        codec = make_compressor(name)
        with pytest.raises(CompressionError):
            codec.encode(np.array([]))

    @pytest.mark.parametrize("name", ["fp32", "signsgd", "topk", "qsgd"])
    def test_rejects_nonfinite(self, name, rng):
        codec = make_compressor(name)
        g = rng.normal(size=10)
        g[3] = np.nan
        with pytest.raises(CompressionError, match="non-finite"):
            codec.encode(g)

    @pytest.mark.parametrize("name", ["fp32", "signsgd", "topk"])
    def test_rejects_integer_dtype(self, name):
        codec = make_compressor(name)
        with pytest.raises(CompressionError, match="floating"):
            codec.encode(np.arange(10))
