"""What-if analysis for users (§7): pick a compression scheme for a setup.

The paper argues its model's real value is letting a data scientist
answer "will method X speed up *my* job?" without renting a cluster.
This module packages that workflow: given a model, a cluster (or raw
calibrated inputs) and a candidate list, it prices every candidate,
checks memory feasibility of the gather-based ones, and returns a ranked
recommendation with the reasons spelled out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..compression.kernel_cost import KernelProfile, v100_kernel_profile
from ..compression.schemes import (
    FP16Scheme,
    PowerSGDScheme,
    Scheme,
    SignSGDScheme,
    SyncSGDScheme,
    TopKScheme,
)
from ..compute import ComputeModel
from ..errors import ConfigurationError
from ..hardware import ClusterConfig, GPUSpec, V100
from ..models import ModelSpec
from ..network import Fabric
from .calibration import calibrate
from .perf_model import PerfModelInputs, predict, syncsgd_time


def default_candidates() -> List[Scheme]:
    """The menu a practitioner realistically chooses from."""
    return [
        SyncSGDScheme(),
        FP16Scheme(),
        PowerSGDScheme(rank=4),
        PowerSGDScheme(rank=8),
        TopKScheme(fraction=0.01),
        SignSGDScheme(),
    ]


@dataclass(frozen=True)
class CandidateVerdict:
    """One candidate's predicted standing for the user's setup."""

    scheme_label: str
    predicted_s: float
    speedup_vs_syncsgd: float
    feasible: bool
    note: str


@dataclass(frozen=True)
class Recommendation:
    """Ranked verdicts plus the chosen scheme."""

    model: str
    world_size: int
    bandwidth_gbps: float
    verdicts: Tuple[CandidateVerdict, ...]

    @property
    def best(self) -> CandidateVerdict:
        """Fastest feasible candidate."""
        feasible = [v for v in self.verdicts if v.feasible]
        if not feasible:
            raise ConfigurationError("no feasible candidate")
        return min(feasible, key=lambda v: v.predicted_s)

    def render(self) -> str:
        """Human-readable ranking."""
        lines = [
            f"recommendation for {self.model} at {self.world_size} GPUs, "
            f"{self.bandwidth_gbps:.1f} Gbit/s:"
        ]
        for v in sorted(self.verdicts,
                        key=lambda v: (not v.feasible, v.predicted_s)):
            marker = "->" if v.scheme_label == self.best.scheme_label else "  "
            status = (f"{v.predicted_s * 1e3:7.1f} ms "
                      f"({v.speedup_vs_syncsgd:+.1%})"
                      if v.feasible else "infeasible")
            lines.append(f" {marker} {v.scheme_label:<18} {status}  {v.note}")
        return "\n".join(lines)


def recommend_for_inputs(model: ModelSpec, inputs: PerfModelInputs,
                         candidates: Optional[Sequence[Scheme]] = None,
                         gpu: GPUSpec = V100,
                         profile: Optional[KernelProfile] = None,
                         ) -> Recommendation:
    """Rank candidates for already-calibrated inputs."""
    schemes = list(candidates) if candidates is not None \
        else default_candidates()
    if not schemes:
        raise ConfigurationError("candidate list is empty")
    prof = profile if profile is not None else v100_kernel_profile()
    compute = ComputeModel(model, gpu)
    bs = inputs.batch_size or model.default_batch_size
    baseline = syncsgd_time(model, inputs, gpu).total
    p = inputs.world_size

    verdicts: List[CandidateVerdict] = []
    for scheme in schemes:
        cost = scheme.cost(model, p, prof)
        fits, required = compute.fits_in_memory(
            bs, cost.aggregation_working_set(p))
        if not fits:
            verdicts.append(CandidateVerdict(
                scheme_label=scheme.label, predicted_s=float("inf"),
                speedup_vs_syncsgd=float("-inf"), feasible=False,
                note=(f"gather working set needs "
                      f"{required / 1e9:.0f} GB > "
                      f"{gpu.memory_bytes / 1e9:.0f} GB GPU")))
            continue
        predicted = predict(model, scheme, inputs, gpu, prof).total
        speedup = (baseline - predicted) / baseline
        if isinstance(scheme, SyncSGDScheme):
            note = "baseline"
        elif speedup > 0.05:
            note = "worth it"
        elif speedup > -0.02:
            note = "a wash"
        else:
            note = ("encode cost exceeds headroom"
                    if cost.encode_decode_s > max(0.0, baseline - compute.
                                                  backward_time(bs))
                    else "communication savings too small")
        verdicts.append(CandidateVerdict(
            scheme_label=scheme.label, predicted_s=predicted,
            speedup_vs_syncsgd=speedup, feasible=True, note=note))
    return Recommendation(
        model=model.name,
        world_size=p,
        bandwidth_gbps=inputs.bandwidth_bytes_per_s * 8 / 1e9,
        verdicts=tuple(verdicts),
    )


def recommend(model: ModelSpec, cluster: ClusterConfig,
              batch_size: Optional[int] = None,
              candidates: Optional[Sequence[Scheme]] = None,
              fabric: Optional[Fabric] = None) -> Recommendation:
    """Full §7 workflow: calibrate against the cluster, then rank.

    Uses the same pre-run measurements the paper's methodology collects
    (iperf bandwidth minimum, α, γ).
    """
    report = calibrate(model, cluster, batch_size=batch_size,
                       fabric=fabric)
    return recommend_for_inputs(model, report.inputs,
                                candidates=candidates, gpu=cluster.gpu)
