"""Table 2: encode/decode times for ResNet-50 at 4 machines.

Regenerated from the calibrated kernel-cost model.  Because the model's
constants were *solved from* these very rows, the PowerSGD entries
reproduce exactly and the Top-K entries to within the least-squares
residual — the table doubles as a calibration audit.  The ``measured``
column additionally times the *numeric* codecs on a synthetic ResNet-50
sized gradient, showing the real numpy kernels exhibit the same ordering
(their absolute values reflect this CPU, not a V100).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..compression import (
    TABLE2_POWERSGD_MS,
    TABLE2_SIGNSGD_MS,
    TABLE2_TOPK_MS,
    TABLE2_WORLD_SIZE,
    make_compressor,
    v100_kernel_profile,
)
from ..compression.kernel_cost import (
    powersgd_encode_decode_time,
    signsgd_encode_decode_time,
    topk_encode_decode_time,
)
from ..models import get_model
from .runner import ExperimentResult


def _time_numeric_codec(name: str, params: Dict[str, Any],
                        numel: int, seed: int = 0) -> float:
    """Wall-clock one encode+decode of the numpy codec on a gradient of
    ``numel`` elements (flat; a scale reference, not a V100 proxy)."""
    rng = np.random.default_rng(seed)
    if name == "powersgd":
        grad = rng.normal(size=(512, numel // 512))
    else:
        grad = rng.normal(size=numel)
    codec = make_compressor(name, **params)
    start = time.perf_counter()
    payload = codec.encode(grad)
    codec.decode(payload)
    return time.perf_counter() - start


def run_table2(measure_numeric: bool = False,
               numeric_numel: int = 1 << 20) -> ExperimentResult:
    """Model-predicted (and optionally numerically measured) Table 2."""
    model = get_model("resnet50")
    profile = v100_kernel_profile()
    p = TABLE2_WORLD_SIZE
    rows: List[Dict[str, Any]] = []

    for rank, paper_ms in sorted(TABLE2_POWERSGD_MS.items()):
        rows.append({
            "method": "powersgd",
            "parameter": f"rank-{rank}",
            "model_ms": powersgd_encode_decode_time(
                model, rank, profile) * 1e3,
            "paper_ms": paper_ms,
            "numeric_cpu_ms": (
                _time_numeric_codec("powersgd", {"rank": rank},
                                    numeric_numel) * 1e3
                if measure_numeric else float("nan")),
        })
    for fraction, paper_ms in sorted(TABLE2_TOPK_MS.items(), reverse=True):
        rows.append({
            "method": "topk",
            "parameter": f"{fraction:.0%}",
            "model_ms": topk_encode_decode_time(
                model, fraction, profile, p) * 1e3,
            "paper_ms": paper_ms,
            "numeric_cpu_ms": (
                _time_numeric_codec("topk", {"fraction": fraction},
                                    numeric_numel) * 1e3
                if measure_numeric else float("nan")),
        })
    rows.append({
        "method": "signsgd",
        "parameter": "-",
        "model_ms": signsgd_encode_decode_time(model, profile, p) * 1e3,
        "paper_ms": TABLE2_SIGNSGD_MS,
        "numeric_cpu_ms": (
            _time_numeric_codec("signsgd", {}, numeric_numel) * 1e3
            if measure_numeric else float("nan")),
    })
    return ExperimentResult(
        experiment_id="table2",
        title=(f"Encode/decode times, ResNet-50, {p} GPUs "
               f"(model vs paper)"),
        columns=("method", "parameter", "model_ms", "paper_ms",
                 "numeric_cpu_ms"),
        rows=tuple(rows),
    )
