"""Sensitivity of the performance model to its calibrated inputs.

The §4.3 calibration measures four quantities (BW, α, γ, T_comp).  How
much does each matter?  This module computes normalized sensitivities
(elasticities) of the predicted iteration time to each input via central
finite differences:

    S_x = (dT / T) / (dx / x)

An elasticity of 1.0 means a 10 % measurement error in that input shifts
the prediction by 10 %; near 0 means the input barely matters for this
configuration.  Practitioners can use this to decide which calibration
measurement deserves the most care — e.g. syncSGD on a comm-bound BERT
is all bandwidth, while PowerSGD is nearly all ``T_comp``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from ..compression.kernel_cost import KernelProfile, v100_kernel_profile
from ..compression.schemes import Scheme, SyncSGDScheme
from ..errors import ConfigurationError
from ..hardware import GPUSpec, V100
from ..models import ModelSpec
from ..core.perf_model import PerfModelInputs, predict

#: Relative perturbation used for the central differences.
DEFAULT_EPSILON = 0.02


@dataclass(frozen=True)
class Sensitivities:
    """Elasticities of predicted iteration time to each model input."""

    bandwidth: float
    alpha: float
    gamma: float
    compute: float
    encode: float

    def as_dict(self) -> Dict[str, float]:
        return {"bandwidth": self.bandwidth, "alpha": self.alpha,
                "gamma": self.gamma, "compute": self.compute,
                "encode": self.encode}

    def most_sensitive(self) -> str:
        """The input whose measurement error matters most."""
        return max(self.as_dict(), key=lambda k: abs(self.as_dict()[k]))

    def render(self) -> str:
        lines = ["prediction elasticities (dT/T per dx/x):"]
        for name, value in sorted(self.as_dict().items(),
                                  key=lambda kv: -abs(kv[1])):
            lines.append(f"  {name:<10} {value:+.3f}")
        return "\n".join(lines)


def _elasticity(f_plus: float, f_minus: float, f_base: float,
                epsilon: float) -> float:
    if f_base <= 0:
        raise ConfigurationError("baseline prediction must be > 0")
    return (f_plus - f_minus) / (2.0 * epsilon * f_base)


def model_sensitivities(model: ModelSpec, scheme: Scheme,
                        inputs: PerfModelInputs, gpu: GPUSpec = V100,
                        profile: Optional[KernelProfile] = None,
                        epsilon: float = DEFAULT_EPSILON) -> Sensitivities:
    """Central-difference elasticities of the §4 prediction."""
    if not 0 < epsilon < 0.5:
        raise ConfigurationError(
            f"epsilon must be in (0, 0.5), got {epsilon}")
    prof = profile if profile is not None else v100_kernel_profile()
    base = predict(model, scheme, inputs, gpu, prof).total

    def perturbed_inputs(**changes) -> PerfModelInputs:
        return replace(inputs, **changes)

    # Bandwidth.
    bw = inputs.bandwidth_bytes_per_s
    s_bw = _elasticity(
        predict(model, scheme,
                perturbed_inputs(bandwidth_bytes_per_s=bw * (1 + epsilon)),
                gpu, prof).total,
        predict(model, scheme,
                perturbed_inputs(bandwidth_bytes_per_s=bw * (1 - epsilon)),
                gpu, prof).total,
        base, epsilon)

    # Alpha.
    alpha = inputs.alpha_s
    if alpha > 0:
        s_alpha = _elasticity(
            predict(model, scheme,
                    perturbed_inputs(alpha_s=alpha * (1 + epsilon)),
                    gpu, prof).total,
            predict(model, scheme,
                    perturbed_inputs(alpha_s=alpha * (1 - epsilon)),
                    gpu, prof).total,
            base, epsilon)
    else:
        s_alpha = 0.0

    # Gamma (only defined above 1; perturb upward-compatible range).
    gamma = inputs.gamma
    hi = gamma * (1 + epsilon)
    lo = max(1.0, gamma * (1 - epsilon))
    actual_eps = (hi - lo) / (2.0 * gamma)
    s_gamma = _elasticity(
        predict(model, scheme, perturbed_inputs(gamma=hi), gpu,
                prof).total,
        predict(model, scheme, perturbed_inputs(gamma=lo), gpu,
                prof).total,
        base, actual_eps) if actual_eps > 0 else 0.0

    # Compute speed (T_comp scales inversely with GPU speed).
    s_compute = -_elasticity(
        predict(model, scheme, inputs, gpu.scaled(1 + epsilon),
                prof).total,
        predict(model, scheme, inputs, gpu.scaled(1 - epsilon),
                prof).total,
        base, epsilon)

    # Encode/decode speed (kernel profile).
    if isinstance(scheme, SyncSGDScheme):
        s_encode = 0.0
    else:
        s_encode = -_elasticity(
            predict(model, scheme, inputs, gpu,
                    prof.scaled(1 + epsilon)).total,
            predict(model, scheme, inputs, gpu,
                    prof.scaled(1 - epsilon)).total,
            base, epsilon)

    return Sensitivities(bandwidth=s_bw, alpha=s_alpha, gamma=s_gamma,
                         compute=s_compute, encode=s_encode)
