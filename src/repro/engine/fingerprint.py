"""Stable content fingerprints for simulation configurations.

The result cache is *content-addressed*: a simulation's identity is the
SHA-256 of a canonical JSON rendering of everything that determines its
output — the model's exact layer metadata, the scheme (label and
parameters), the cluster, the :class:`~repro.simulator.DDPConfig`, the
fabric's pricing parameters *and its current bandwidth matrix* (so a
``degrade_link`` fault produces a different key), the kernel profile,
and the run protocol (batch size, iterations, warmup, seed).

Two rules keep keys stable across processes and sessions:

* floats are rendered with ``repr`` (shortest round-trip form), so the
  same value always serializes to the same text;
* dict keys are sorted, so insertion order never leaks into the hash.

Anything not captured here MUST NOT influence ``DDPSimulator.run`` —
that is the cache's correctness contract, and what
``tests/test_engine_cache.py`` exercises field by field.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Any, Dict, Optional

from ..compression.kernel_cost import KernelProfile
from ..compression.schemes import Scheme
from ..faults import FaultSchedule
from ..hardware import ClusterConfig
from ..models import ModelSpec
from ..network import Fabric
from ..simulator import DDPConfig

#: Bump when the simulator's output semantics change incompatibly, so
#: stale cache directories are never silently reused across versions.
FINGERPRINT_VERSION = 1


def model_fingerprint(model: ModelSpec) -> Dict[str, Any]:
    """Everything about a model that the simulator's timing depends on."""
    return {
        "name": model.name,
        "default_batch_size": model.default_batch_size,
        "compute_efficiency": model.compute_efficiency,
        "batch_half_saturation": model.batch_half_saturation,
        "gather_granularity": model.gather_granularity,
        "layers": [
            {
                "name": layer.name,
                "kind": layer.kind,
                "param_shape": list(layer.param_shape),
                "matrix_shape": list(layer.matrix_shape),
                "extra_params": layer.extra_params,
                "fwd_flops_per_sample": layer.fwd_flops_per_sample,
                "activation_bytes_per_sample":
                    layer.activation_bytes_per_sample,
            }
            for layer in model.layers
        ],
    }


def scheme_fingerprint(scheme: Optional[Scheme]) -> Dict[str, Any]:
    """Scheme identity: class, label, and all constructor parameters.

    ``None`` (the syncSGD default) hashes distinctly from an explicit
    :class:`~repro.compression.schemes.SyncSGDScheme` label so the key
    still matches what the simulator actually runs.
    """
    if scheme is None:
        return {"name": "syncsgd", "label": "syncsgd", "params": {}}
    return {
        "name": scheme.name,
        "label": scheme.label,
        "class": type(scheme).__name__,
        "all_reducible": scheme.all_reducible,
        "layerwise": scheme.layerwise,
        "ddp_overlap": scheme.ddp_overlap,
        # Built-in schemes keep their parameters (rank, fraction, ...)
        # as plain instance attributes; custom schemes should too.
        "params": {k: v for k, v in sorted(vars(scheme).items())
                   if not k.startswith("_")},
    }


def cluster_fingerprint(cluster: ClusterConfig) -> Dict[str, Any]:
    """Cluster identity: topology, seed, instance and GPU parameters."""
    instance = cluster.instance
    gpu = instance.gpu
    return {
        "num_nodes": cluster.num_nodes,
        "seed": cluster.seed,
        "instance": {
            "name": instance.name,
            "gpus_per_node": instance.gpus_per_node,
            "network_bytes_per_s": instance.network_bytes_per_s,
            "intra_node_bytes_per_s": instance.intra_node_bytes_per_s,
        },
        "gpu": {
            "name": gpu.name,
            "peak_fp32_flops": gpu.peak_fp32_flops,
            "training_efficiency": gpu.training_efficiency,
            "memcpy_bytes_per_s": gpu.memcpy_bytes_per_s,
            "memory_bytes": gpu.memory_bytes,
            "kernel_launch_overhead_s": gpu.kernel_launch_overhead_s,
        },
    }


def fabric_fingerprint(fabric: Optional[Fabric]) -> Dict[str, Any]:
    """Fabric pricing parameters plus the live bandwidth matrix.

    The matrix digest is what invalidates cache entries after
    ``degrade_link``/``degrade_node``: the same cluster with a limping
    link is a different experiment.
    """
    if fabric is None:
        return {"default": True}
    return {
        "default": False,
        "alpha_s": fabric.alpha_s,
        "bandwidth_jitter": fabric.bandwidth_jitter,
        "incast_per_sender": fabric.incast_per_sender,
        "pair_bw_sha256": hashlib.sha256(
            fabric._pair_bw.tobytes()).hexdigest(),
    }


def profile_fingerprint(profile: Optional[KernelProfile]) -> Dict[str, Any]:
    """Kernel-cost profile parameters (``None`` = simulator default)."""
    if profile is None:
        return {"default": True}
    payload = asdict(profile)
    payload["default"] = False
    return payload


def config_fingerprint(config: Optional[DDPConfig]) -> Dict[str, Any]:
    """All :class:`DDPConfig` knobs (``None`` hashes as the default)."""
    return asdict(config if config is not None else DDPConfig())


def faults_fingerprint(faults: Optional[FaultSchedule],
                       ) -> Optional[Dict[str, Any]]:
    """The schedule's full payload, or ``None`` when there is nothing
    to inject.

    ``None`` and an *empty* schedule both return ``None`` — the
    simulator treats them identically, so they must share a cache key;
    and a fault-free job's key must stay byte-for-byte what it was
    before fault injection existed (``SimJob.fingerprint`` omits the
    ``faults`` field entirely in that case).
    """
    if faults is None or faults.is_empty:
        return None
    return faults.fingerprint_payload()


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace variance."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def digest(payload: Any) -> str:
    """SHA-256 hex digest of the canonical JSON of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
