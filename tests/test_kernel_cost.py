"""Kernel cost model: Table-2 calibration and extrapolation."""

import pytest

from repro.compression import (
    TABLE2_POWERSGD_MS,
    TABLE2_SIGNSGD_MS,
    TABLE2_TOPK_MS,
    TABLE2_WORLD_SIZE,
    KernelProfile,
    calibrate_v100_profile,
    v100_kernel_profile,
)
from repro.compression.kernel_cost import (
    atomo_encode_decode_time,
    dgc_encode_decode_time,
    fp16_encode_decode_time,
    gradiveq_encode_decode_time,
    onebit_encode_decode_time,
    powersgd_encode_decode_time,
    qsgd_encode_decode_time,
    randomk_encode_decode_time,
    signsgd_encode_decode_time,
    terngrad_encode_decode_time,
    topk_encode_decode_time,
)
from repro.errors import ConfigurationError
from repro.models import get_model


@pytest.fixture(scope="module")
def profile():
    return v100_kernel_profile()


@pytest.fixture(scope="module")
def rn50():
    return get_model("resnet50")


class TestTable2Calibration:
    def test_powersgd_rows_reproduced_exactly(self, profile, rn50):
        for rank, paper_ms in TABLE2_POWERSGD_MS.items():
            model_ms = powersgd_encode_decode_time(rn50, rank, profile) * 1e3
            # rel 1e-3: the cost adds a ~2 us elementwise pass for the
            # BN/bias extras that the 3x3 calibration solve leaves out.
            assert model_ms == pytest.approx(paper_ms, rel=1e-3)

    def test_topk_rows_within_lsq_residual(self, profile, rn50):
        for fraction, paper_ms in TABLE2_TOPK_MS.items():
            model_ms = topk_encode_decode_time(
                rn50, fraction, profile, TABLE2_WORLD_SIZE) * 1e3
            assert model_ms == pytest.approx(paper_ms, rel=0.06)

    def test_signsgd_row(self, profile, rn50):
        model_ms = signsgd_encode_decode_time(
            rn50, profile, TABLE2_WORLD_SIZE) * 1e3
        assert model_ms == pytest.approx(TABLE2_SIGNSGD_MS, rel=0.05)

    def test_profile_constants_positive(self, profile):
        assert profile.tensor_overhead_s > 0
        assert profile.matmul_flops_per_s > 0
        assert profile.elementwise_elems_per_s > 0

    def test_calibration_is_cached(self):
        assert v100_kernel_profile() is v100_kernel_profile()

    def test_recalibration_matches_cached(self, profile):
        fresh = calibrate_v100_profile()
        assert fresh.matmul_flops_per_s == pytest.approx(
            profile.matmul_flops_per_s)


class TestScaling:
    def test_profile_scaled_halves_times(self, profile, rn50):
        fast = profile.scaled(2.0)
        slow_t = powersgd_encode_decode_time(rn50, 4, profile)
        fast_t = powersgd_encode_decode_time(rn50, 4, fast)
        assert fast_t == pytest.approx(slow_t / 2)

    def test_scaled_rejects_nonpositive(self, profile):
        with pytest.raises(ConfigurationError):
            profile.scaled(0)

    def test_invalid_profile_rejected(self, profile):
        with pytest.raises(ConfigurationError):
            KernelProfile(
                name="bad", tensor_overhead_s=-1.0,
                matmul_flops_per_s=1.0, orth_elems_per_s=1.0,
                select_elems_per_s=1.0, pack_elems_per_s=1.0,
                elementwise_elems_per_s=1.0, svd_flops_per_s=1.0)


class TestExtrapolation:
    def test_powersgd_grows_with_model(self, profile, rn50):
        rn101 = get_model("resnet101")
        assert (powersgd_encode_decode_time(rn101, 4, profile)
                > powersgd_encode_decode_time(rn50, 4, profile))

    def test_powersgd_grows_with_rank(self, profile, rn50):
        times = [powersgd_encode_decode_time(rn50, r, profile)
                 for r in (2, 4, 8, 16)]
        assert times == sorted(times)

    def test_signsgd_linear_in_p(self, profile, rn50):
        t16 = signsgd_encode_decode_time(rn50, profile, 16)
        t96 = signsgd_encode_decode_time(rn50, profile, 96)
        assert t96 / t16 == pytest.approx(97 / 17, rel=0.05)

    def test_topk_decode_dominated_by_p(self, profile, rn50):
        t16 = topk_encode_decode_time(rn50, 0.01, profile, 16)
        t96 = topk_encode_decode_time(rn50, 0.01, profile, 96)
        assert t96 > t16

    def test_fp16_cheapest(self, profile, rn50):
        fp16 = fp16_encode_decode_time(rn50, profile)
        assert fp16 < signsgd_encode_decode_time(rn50, profile, 16)
        assert fp16 < powersgd_encode_decode_time(rn50, 4, profile)

    def test_atomo_most_expensive(self, profile, rn50):
        atomo = atomo_encode_decode_time(rn50, 4, profile, 16)
        assert atomo > topk_encode_decode_time(rn50, 0.2, profile, 16)

    def test_all_methods_positive(self, profile, rn50):
        assert qsgd_encode_decode_time(rn50, profile, 8) > 0
        assert terngrad_encode_decode_time(rn50, profile, 8) > 0
        assert onebit_encode_decode_time(rn50, profile, 8) > 0
        assert randomk_encode_decode_time(rn50, 0.01, profile) > 0
        assert dgc_encode_decode_time(rn50, 0.001, profile, 8) > 0
        assert gradiveq_encode_decode_time(rn50, 512, 64, profile) > 0

    def test_invalid_args_rejected(self, profile, rn50):
        with pytest.raises(ConfigurationError):
            powersgd_encode_decode_time(rn50, 0, profile)
        with pytest.raises(ConfigurationError):
            topk_encode_decode_time(rn50, 0.0, profile, 8)
        with pytest.raises(ConfigurationError):
            topk_encode_decode_time(rn50, 0.1, profile, 0)
        with pytest.raises(ConfigurationError):
            gradiveq_encode_decode_time(rn50, 8, 16, profile)
