"""Engine model-eval batches: families, chunking, caching, fan-out.

Chunking (collapsing job families into one grid-kernel call, and
simulation batches into per-worker chunks) is a pure execution detail:
rows, cache keys, and cached bytes must be identical with it on or off.
"""

import pytest

from repro.compression.schemes import PowerSGDScheme, SignSGDScheme
from repro.compression.kernel_cost import v100_kernel_profile
from repro.core import (
    PerfModelInputs,
    compressed_time,
    syncsgd_time,
    tradeoff_time,
)
from repro.engine import (
    ExperimentEngine,
    ModelEvalJob,
    SimJob,
    SimulationCache,
    evaluate_family,
)
from repro.errors import ConfigurationError
from repro.hardware import V100, cluster_for_gpus
from repro.models import get_model
from repro.telemetry import MetricsRegistry, get_registry, set_registry
from repro.units import gbps_to_bytes_per_s


@pytest.fixture(scope="module")
def rn50():
    return get_model("resnet50")


def inputs_at(gbps=10.0, p=16, bs=32):
    return PerfModelInputs(world_size=p,
                           bandwidth_bytes_per_s=gbps_to_bytes_per_s(gbps),
                           batch_size=bs)


def sweep_jobs(model, gbps_list=(1.0, 5.0, 10.0, 25.0)):
    """A bandwidth-sweep family: baseline + PowerSGD at each point."""
    jobs = []
    for gbps in gbps_list:
        for scheme in (None, PowerSGDScheme(rank=4)):
            jobs.append(ModelEvalJob(model=model, scheme=scheme,
                                     inputs=inputs_at(gbps)))
    return jobs


class BrokenScheme(PowerSGDScheme):
    """A scheme whose pricing always fails (fault-isolation tests)."""

    def cost(self, model, world_size, profile):
        raise RuntimeError("broken scheme")


class TestModelEvalJob:
    def test_fingerprint_deterministic_and_sensitive(self, rn50):
        job = ModelEvalJob(model=rn50, scheme=PowerSGDScheme(rank=4),
                           inputs=inputs_at())
        same = ModelEvalJob(model=rn50, scheme=PowerSGDScheme(rank=4),
                            inputs=inputs_at())
        assert job.fingerprint() == same.fingerprint()
        for other in (
                ModelEvalJob(model=rn50, scheme=PowerSGDScheme(rank=4),
                             inputs=inputs_at(gbps=25.0)),
                ModelEvalJob(model=rn50, scheme=PowerSGDScheme(rank=2),
                             inputs=inputs_at()),
                ModelEvalJob(model=rn50, scheme=None, inputs=inputs_at()),
                ModelEvalJob(model=rn50, scheme=PowerSGDScheme(rank=4),
                             inputs=inputs_at(), compute_factor=2.0),
                ModelEvalJob(model=rn50, scheme=PowerSGDScheme(rank=4),
                             inputs=inputs_at(), tradeoff_k=2.0,
                             tradeoff_l=1.0),
        ):
            assert other.fingerprint() != job.fingerprint()

    def test_validation(self, rn50):
        scheme = PowerSGDScheme(rank=4)
        with pytest.raises(ConfigurationError, match="compute factors"):
            ModelEvalJob(model=rn50, scheme=scheme, inputs=inputs_at(),
                         compute_factor=0.0)
        with pytest.raises(ConfigurationError, match="together"):
            ModelEvalJob(model=rn50, scheme=scheme, inputs=inputs_at(),
                         tradeoff_k=2.0)
        with pytest.raises(ConfigurationError, match="base scheme"):
            ModelEvalJob(model=rn50, scheme=None, inputs=inputs_at(),
                         tradeoff_k=2.0, tradeoff_l=1.0)
        with pytest.raises(ConfigurationError, match="compute_factor"):
            ModelEvalJob(model=rn50, scheme=scheme, inputs=inputs_at(),
                         compute_factor=2.0, tradeoff_k=2.0,
                         tradeoff_l=1.0)

    def test_evaluate_matches_scalar_model(self, rn50):
        base = inputs_at()
        assert (ModelEvalJob(model=rn50, scheme=None,
                             inputs=base).evaluate()
                == syncsgd_time(rn50, base))
        scheme = PowerSGDScheme(rank=4)
        assert (ModelEvalJob(model=rn50, scheme=scheme,
                             inputs=base).evaluate()
                == compressed_time(rn50, scheme, base))
        prof = v100_kernel_profile()
        scaled = ModelEvalJob(model=rn50, scheme=scheme, inputs=base,
                              compute_factor=2.0).evaluate()
        assert scaled == compressed_time(rn50, scheme, base,
                                         V100.scaled(2.0),
                                         prof.scaled(2.0))
        traded = ModelEvalJob(model=rn50, scheme=scheme, inputs=base,
                              tradeoff_k=2.0, tradeoff_l=3.0).evaluate()
        assert traded.total == tradeoff_time(rn50, scheme, 2.0, 3.0, base)

    def test_family_key_groups_sweep_axes(self, rn50):
        scheme = PowerSGDScheme(rank=4)
        a = ModelEvalJob(model=rn50, scheme=scheme, inputs=inputs_at(1.0))
        b = ModelEvalJob(model=rn50, scheme=scheme, inputs=inputs_at(25.0))
        c = ModelEvalJob(model=rn50, scheme=scheme,
                         inputs=inputs_at(1.0, p=64))
        d = ModelEvalJob(model=rn50, scheme=scheme, inputs=inputs_at(1.0),
                         compute_factor=3.0)
        assert a.family_key() == b.family_key() == c.family_key() \
            == d.family_key()
        assert (ModelEvalJob(model=rn50, scheme=None,
                             inputs=inputs_at(1.0)).family_key()
                != a.family_key())
        # Tradeoff families pin the sweep axes instead.
        t1 = ModelEvalJob(model=rn50, scheme=scheme, inputs=inputs_at(1.0),
                          tradeoff_k=1.0, tradeoff_l=1.0)
        t2 = ModelEvalJob(model=rn50, scheme=scheme, inputs=inputs_at(1.0),
                          tradeoff_k=4.0, tradeoff_l=2.0)
        t3 = ModelEvalJob(model=rn50, scheme=scheme, inputs=inputs_at(9.0),
                          tradeoff_k=1.0, tradeoff_l=1.0)
        assert t1.family_key() == t2.family_key()
        assert t1.family_key() != t3.family_key()
        assert t1.family_key() != a.family_key()


class TestEvaluateFamily:
    def test_empty(self):
        assert evaluate_family([]) == []

    def test_sweep_family_bit_identical_to_per_job(self, rn50):
        jobs = [ModelEvalJob(model=rn50, scheme=PowerSGDScheme(rank=4),
                             inputs=inputs_at(g)) for g in (1.0, 9.0, 30.0)]
        jobs.append(ModelEvalJob(model=rn50, scheme=PowerSGDScheme(rank=4),
                                 inputs=inputs_at(9.0), compute_factor=2.5))
        assert evaluate_family(jobs) == [j.evaluate() for j in jobs]

    def test_tradeoff_family_bit_identical(self, rn50):
        scheme = PowerSGDScheme(rank=4)
        jobs = [ModelEvalJob(model=rn50, scheme=scheme,
                             inputs=inputs_at(), tradeoff_k=k,
                             tradeoff_l=l)
                for k in (1.0, 2.0, 4.0) for l in (1.0, 3.0)]
        assert evaluate_family(jobs) == [j.evaluate() for j in jobs]


class TestEngineModelOutcomes:
    def test_serial_outcomes_match_scalar(self, rn50):
        jobs = sweep_jobs(rn50)
        engine = ExperimentEngine()
        outcomes = engine.run_model_outcomes(jobs)
        assert [o.job for o in outcomes] == jobs
        assert [o.result for o in outcomes] == [j.evaluate() for j in jobs]
        assert engine.stats().jobs_chunked == len(jobs)

    def test_chunking_off_identical_but_unchunked(self, rn50):
        jobs = sweep_jobs(rn50)
        chunked = ExperimentEngine().run_model_outcomes(jobs)
        engine = ExperimentEngine(chunking=False)
        plain = engine.run_model_outcomes(jobs)
        assert [o.result for o in plain] == [o.result for o in chunked]
        assert engine.stats().jobs_chunked == 0

    def test_parallel_outcomes_identical(self, rn50):
        jobs = sweep_jobs(rn50)
        serial = ExperimentEngine().run_model_outcomes(jobs)
        fanned = ExperimentEngine(jobs=4).run_model_outcomes(jobs)
        assert [o.result for o in fanned] == [o.result for o in serial]

    def test_warm_cache_all_hits(self, rn50, tmp_path):
        jobs = sweep_jobs(rn50)
        cache = SimulationCache(str(tmp_path))
        engine = ExperimentEngine(cache=cache)
        cold = engine.run_model_outcomes(jobs)
        assert not any(o.cached for o in cold)
        before = cache.stats.snapshot()
        warm = engine.run_model_outcomes(jobs)
        delta = cache.stats.since(before)
        assert all(o.cached for o in warm)
        assert delta.misses == 0 and delta.hits == len(jobs)
        assert [o.result for o in warm] == [o.result for o in cold]

    def test_cache_bytes_identical_across_chunking(self, rn50, tmp_path):
        jobs = sweep_jobs(rn50)
        dirs = {}
        for label, chunking in (("on", True), ("off", False)):
            cache_dir = tmp_path / label
            engine = ExperimentEngine(cache=SimulationCache(str(cache_dir)),
                                      chunking=chunking)
            engine.run_model_outcomes(jobs)
            dirs[label] = {
                f.name: f.read_bytes()
                for f in cache_dir.rglob("*") if f.is_file()}
        assert dirs["on"] == dirs["off"]

    def test_failing_job_isolated_not_cached(self, rn50, tmp_path):
        good = ModelEvalJob(model=rn50, scheme=PowerSGDScheme(rank=4),
                            inputs=inputs_at())
        bad = ModelEvalJob(model=rn50, scheme=BrokenScheme(rank=4),
                           inputs=inputs_at())
        cache = SimulationCache(str(tmp_path))
        engine = ExperimentEngine(cache=cache)
        outcomes = engine.run_model_outcomes([good, bad])
        assert outcomes[0].ok and outcomes[0].result is not None
        assert not outcomes[1].ok
        with pytest.raises(RuntimeError, match="broken scheme"):
            outcomes[1].unwrap()
        assert engine.stats().failures == 1
        # The failure is never cached: a retry re-executes it.
        assert cache.get(bad.fingerprint()) is None

    def test_chunk_counter_and_grid_points_recorded(self, rn50):
        previous = get_registry()
        registry = MetricsRegistry()
        set_registry(registry)
        try:
            engine = ExperimentEngine()
            engine.run_model_outcomes(sweep_jobs(rn50))
        finally:
            set_registry(previous)
        counters = registry.snapshot()["counters"]
        assert counters["engine_jobs_chunked_total"] == 8
        assert counters['engine_jobs_total{cached="false"}'] == 8
        assert counters.get("grid_eval_points_total", 0) >= 8


class TestSimJobChunking:
    @pytest.fixture(scope="class")
    def sim_batch(self, rn50):
        return [SimJob(model=rn50, cluster=cluster_for_gpus(4),
                       scheme=scheme, batch_size=bs, iterations=6,
                       warmup=2)
                for bs in (8, 16, 32, 64)
                for scheme in (None, SignSGDScheme())]

    def _rows(self, outcomes):
        return [(o.job.describe(), o.result.sync_times) for o in outcomes]

    def test_chunked_pool_identical_to_serial(self, sim_batch):
        serial = ExperimentEngine().run_outcomes(sim_batch)
        engine = ExperimentEngine(jobs=2)
        fanned = engine.run_outcomes(sim_batch)
        assert self._rows(fanned) == self._rows(serial)
        assert engine.stats().jobs_chunked == len(sim_batch)
        unchunked_engine = ExperimentEngine(jobs=2, chunking=False)
        unchunked = unchunked_engine.run_outcomes(sim_batch)
        assert self._rows(unchunked) == self._rows(serial)
        assert unchunked_engine.stats().jobs_chunked == 0

    def test_chunk_size_policy(self):
        engine = ExperimentEngine(jobs=4)
        assert engine._chunk_size(32, 4) == 2  # ~4 chunks per worker
        assert engine._chunk_size(3, 4) == 1
        assert ExperimentEngine(jobs=4, chunking=False)._chunk_size(
            32, 4) == 1
        # Per-job timeout budgeting is incompatible with chunking.
        assert ExperimentEngine(jobs=4, job_timeout_s=30.0)._chunk_size(
            32, 4) == 1
