"""Shared experiment infrastructure: result containers and rendering.

Every experiment module produces an :class:`ExperimentResult` — an id
(the paper's table/figure number), a set of rows, and notes about any
skipped configurations (OOMs).  ``render_table`` prints the same rows the
paper reports, which is what the benchmark harness asserts against and
what the examples show to humans.  ``to_json``/``from_json`` persist
results so regenerated exhibits can be archived and diffed across runs.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..hardware import ClusterConfig, cluster_for_gpus

#: The GPU counts the paper's scaling figures sweep (on p3.8xlarge).
PAPER_GPU_SWEEP = (8, 16, 32, 64, 96)


@dataclass(frozen=True)
class ExperimentResult:
    """Rows regenerating one of the paper's tables or figures.

    Attributes:
        experiment_id: e.g. ``"fig4"`` or ``"table2"``.
        title: Human-readable description.
        columns: Column names, in display order.
        rows: One dict per row; keys must cover ``columns``.
        notes: Free-form annotations (skipped points, substitutions).
    """

    experiment_id: str
    title: str
    columns: Tuple[str, ...]
    rows: Tuple[Dict[str, Any], ...]
    notes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.columns:
            raise ConfigurationError(f"{self.experiment_id}: no columns")
        for i, row in enumerate(self.rows):
            missing = [c for c in self.columns if c not in row]
            if missing:
                raise ConfigurationError(
                    f"{self.experiment_id}: row {i} missing columns "
                    f"{missing}")

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise ConfigurationError(
                f"{self.experiment_id}: no column {name!r} "
                f"(have {list(self.columns)})")
        return [row[name] for row in self.rows]

    def select(self, **filters: Any) -> List[Dict[str, Any]]:
        """Rows whose values match every keyword filter exactly."""
        return [row for row in self.rows
                if all(row.get(k) == v for k, v in filters.items())]

    def single(self, **filters: Any) -> Dict[str, Any]:
        """The unique row matching the filters (raises otherwise)."""
        matches = self.select(**filters)
        if len(matches) != 1:
            raise ConfigurationError(
                f"{self.experiment_id}: expected exactly one row for "
                f"{filters}, found {len(matches)}")
        return matches[0]

    def render_table(self, float_format: str = "{:.1f}") -> str:
        """ASCII table of all rows (the paper-facing output)."""
        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return float_format.format(value)
            return str(value)

        header = list(self.columns)
        body = [[fmt(row[c]) for c in self.columns] for row in self.rows]
        widths = [max(len(h), *(len(r[i]) for r in body)) if body else len(h)
                  for i, h in enumerate(header)]
        lines = [
            f"{self.experiment_id}: {self.title}",
            "  " + " | ".join(h.ljust(w) for h, w in zip(header, widths)),
            "  " + "-+-".join("-" * w for w in widths),
        ]
        for row in body:
            lines.append(
                "  " + " | ".join(v.ljust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    # ----- persistence ------------------------------------------------------

    def content_digest(self) -> str:
        """SHA-256 of the canonical JSON of this result's content.

        The same digest the engine's cache keys use, so a run manifest
        can record exactly which rows a session produced and a rerun
        can be diffed by hash alone.  Non-finite floats are encoded the
        way :meth:`to_json` encodes them (canonical JSON rejects NaN).
        """
        from ..engine.fingerprint import digest  # deferred: keeps this
        # module importable without pulling in the simulator stack

        def encode(value: Any) -> Any:
            if isinstance(value, float) and not math.isfinite(value):
                return {"__float__": str(value)}
            return value

        return digest({
            "experiment_id": self.experiment_id,
            "columns": list(self.columns),
            "rows": [{k: encode(v) for k, v in row.items()}
                     for row in self.rows],
            "notes": list(self.notes),
        })

    def to_json(self) -> str:
        """Serialize to JSON (NaN/inf encoded as strings, since strict
        JSON has no literals for them)."""
        def encode(value: Any) -> Any:
            if isinstance(value, float) and not math.isfinite(value):
                return {"__float__": str(value)}
            return value

        return json.dumps({
            "experiment_id": self.experiment_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [{k: encode(v) for k, v in row.items()}
                     for row in self.rows],
            "notes": list(self.notes),
        }, indent=1, allow_nan=False)

    @classmethod
    def from_json(cls, payload: str) -> "ExperimentResult":
        """Reconstruct a result serialized with :meth:`to_json`."""
        def decode(value: Any) -> Any:
            if isinstance(value, dict) and "__float__" in value:
                return float(value["__float__"])
            return value

        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid result JSON: {exc}")
        for key in ("experiment_id", "title", "columns", "rows"):
            if key not in data:
                raise ConfigurationError(f"result JSON missing {key!r}")
        return cls(
            experiment_id=data["experiment_id"],
            title=data["title"],
            columns=tuple(data["columns"]),
            rows=tuple({k: decode(v) for k, v in row.items()}
                       for row in data["rows"]),
            notes=tuple(data.get("notes", ())),
        )

    def save(self, path: str) -> None:
        """Write the JSON serialization to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "ExperimentResult":
        """Read a result previously written with :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def scaling_clusters(gpu_counts: Sequence[int] = PAPER_GPU_SWEEP,
                     ) -> List[ClusterConfig]:
    """Clusters for the paper's GPU sweep (4-GPU p3.8xlarge nodes)."""
    return [cluster_for_gpus(g) for g in gpu_counts]


def speedup(baseline: float, candidate: float) -> float:
    """Fractional speedup of ``candidate`` over ``baseline``
    (positive = candidate faster)."""
    if baseline <= 0:
        raise ConfigurationError(f"baseline must be > 0, got {baseline}")
    return (baseline - candidate) / baseline
