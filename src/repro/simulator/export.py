"""Export simulated traces to the Chrome trace-event / Perfetto format.

``chrome://tracing`` (or https://ui.perfetto.dev) renders the JSON
produced here the way Nsight renders real runs — one named track per
simulated stream — which makes simulated iterations directly comparable
with the paper's Figure 2.  The exporter is general:

* **N streams** — track ids are allocated dynamically in first-seen
  order (compute and comm keep their historical ids 1 and 2 when
  present), so new telemetry streams export instead of crashing;
* **multiple iterations** — :func:`traces_to_events` lays consecutive
  iteration traces end-to-end on one time axis, with an instant event
  marking each iteration boundary;
* **multiple workers** — :func:`run_to_events` gives every simulated
  worker its own process (pid) with its own named track group;
* **counter tracks** — communication spans carry ``bytes_on_wire``;
  the exporter accumulates them into a ``wire_bytes`` Perfetto counter
  track (``ph: "C"``), the cumulative-traffic curve the paper reads off
  its NIC counters;
* **tracer spans** — :func:`tracer_spans_to_events` exports the
  span-based run tracer (:mod:`repro.telemetry.tracing`): one Perfetto
  process per OS pid, one named thread per span track, so engine
  queue/exec/cache tracks and simulator streams share a timeline.

Format reference: the Trace Event Format's "complete" (``ph: "X"``),
metadata (``"M"``), instant (``"i"``) and counter (``"C"``) events with
microsecond timestamps.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..errors import ConfigurationError
from .trace import COMM_STREAM, COMPUTE_STREAM, IterationTrace

#: Streams with reserved track ids, for stable layout across exports.
_PREFERRED_TRACK_IDS = {COMPUTE_STREAM: 1, COMM_STREAM: 2}

#: Category per known stream, for Perfetto filtering/coloring; unknown
#: streams use their own name as the category.
_CATEGORIES = {COMPUTE_STREAM: "compute", COMM_STREAM: "network"}

#: Track id of the counter track (above any realistic stream count).
_COUNTER_TRACK_ID = 1000

#: Counter track name.
WIRE_BYTES_COUNTER = "wire_bytes"


def allocate_track_ids(streams: Sequence[str]) -> Dict[str, int]:
    """Stable stream -> track id map.

    ``compute`` and ``comm`` keep ids 1 and 2 (when present) so existing
    tooling sees the historical layout; every other stream gets the next
    free id in first-appearance order.
    """
    ids: Dict[str, int] = {}
    for stream in streams:
        if stream in _PREFERRED_TRACK_IDS and stream not in ids:
            ids[stream] = _PREFERRED_TRACK_IDS[stream]
    next_id = max(_PREFERRED_TRACK_IDS.values()) + 1
    for stream in streams:
        if stream in ids:
            continue
        while next_id in ids.values():
            next_id += 1
        ids[stream] = next_id
        next_id += 1
    return ids


def _category(stream: str) -> str:
    return _CATEGORIES.get(stream, stream)


def traces_to_events(traces: Sequence[IterationTrace],
                     process_name: str = "worker0",
                     pid: int = 0,
                     include_counters: bool = True,
                     ) -> List[Dict[str, Any]]:
    """Convert one worker's iteration traces to trace-event dicts.

    Consecutive traces are offset so iteration ``i+1`` starts where
    iteration ``i`` ended; each boundary gets an instant event.  With
    ``include_counters``, comm spans' ``bytes_on_wire`` accumulate into
    a cumulative counter track (omitted if no span carries bytes).
    """
    if not traces:
        raise ConfigurationError("no traces to export")
    if any(not t.spans for t in traces):
        raise ConfigurationError("trace has no spans to export")

    streams: List[str] = []
    for trace in traces:
        for stream in trace.streams():
            if stream not in streams:
                streams.append(stream)
    track_ids = allocate_track_ids(streams)

    events: List[Dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": pid,
         "args": {"name": process_name}},
    ]
    for stream in streams:
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": track_ids[stream], "args": {"name": stream}})

    counter_points: List[Dict[str, Any]] = []
    cumulative_bytes = 0.0
    offset = 0.0
    first_tid = track_ids[streams[0]]
    for index, trace in enumerate(traces):
        if len(traces) > 1:
            events.append({
                "name": f"iteration{index}", "ph": "i", "s": "p",
                "pid": pid, "tid": first_tid, "ts": offset * 1e6,
            })
        spans = sorted(trace.spans, key=lambda s: (s.start, s.end))
        for span in spans:
            events.append({
                "name": span.label,
                "cat": _category(span.stream),
                "ph": "X",
                "pid": pid,
                "tid": track_ids[span.stream],
                "ts": (offset + span.start) * 1e6,   # microseconds
                "dur": span.duration * 1e6,
            })
            if span.bytes_on_wire > 0:
                cumulative_bytes += span.bytes_on_wire
                counter_points.append({
                    "name": WIRE_BYTES_COUNTER,
                    "ph": "C",
                    "pid": pid,
                    "tid": _COUNTER_TRACK_ID,
                    "ts": (offset + span.end) * 1e6,
                    "args": {"bytes": cumulative_bytes},
                })
        span_end = max(s.end for s in trace.spans)
        offset += max(trace.iteration_end, span_end)

    if include_counters and counter_points:
        # Anchor the counter at zero so Perfetto draws the full curve.
        first_ts = min(p["ts"] for p in counter_points)
        events.append({"name": WIRE_BYTES_COUNTER, "ph": "C", "pid": pid,
                       "tid": _COUNTER_TRACK_ID,
                       "ts": min(0.0, first_ts), "args": {"bytes": 0.0}})
        events.extend(counter_points)
    return events


def trace_to_events(trace: IterationTrace,
                    process_name: str = "worker0",
                    pid: int = 0) -> List[Dict[str, Any]]:
    """Convert a single-iteration trace to trace-event dicts."""
    return traces_to_events([trace], process_name=process_name, pid=pid)


def run_to_events(worker_traces: Mapping[str, Sequence[IterationTrace]],
                  include_counters: bool = True) -> List[Dict[str, Any]]:
    """Convert a multi-worker run to one combined event list.

    Each worker (in mapping order) becomes its own process: Perfetto
    groups its streams under the worker's name, so per-worker jitter is
    visible side by side, like a multi-rank Nsight session.
    """
    if not worker_traces:
        raise ConfigurationError("no workers to export")
    events: List[Dict[str, Any]] = []
    for pid, (name, traces) in enumerate(worker_traces.items()):
        events.extend(traces_to_events(
            traces, process_name=name, pid=pid,
            include_counters=include_counters))
    return events


def tracer_spans_to_events(spans: Sequence[Any],
                           root_pid: Optional[int] = None,
                           ) -> List[Dict[str, Any]]:
    """Convert telemetry tracer spans to trace-event dicts.

    The span-based tracer (:mod:`repro.telemetry.tracing`) times in
    absolute wall-clock seconds across several OS processes; this
    exporter gives every pid its own Perfetto process — the root
    process (``root_pid``, defaulting to the pid of the earliest span)
    is named ``engine``, pool workers ``worker-<pid>`` — and allocates
    one named thread per span *track* through the same
    :func:`allocate_track_ids` the simulator streams use, so engine
    tracks (queue/exec/cache) and reconstructed ``sim:*`` streams
    coexist in one file.  Timestamps are rebased to the earliest span;
    trace/span/parent ids and labels ride in ``args`` for programmatic
    consumers.

    Duck-typed over :class:`~repro.telemetry.tracing.TraceSpan` so the
    simulator package keeps importing without the telemetry layer.
    """
    if not spans:
        raise ConfigurationError("no spans to export")
    base = min(span.start_unix_s for span in spans)
    if root_pid is None:
        root_pid = min(spans, key=lambda s: s.start_unix_s).pid
    pids: List[int] = []
    tracks: Dict[int, List[str]] = {}
    for span in spans:
        if span.pid not in tracks:
            pids.append(span.pid)
            tracks[span.pid] = []
        if span.track not in tracks[span.pid]:
            tracks[span.pid].append(span.track)
    events: List[Dict[str, Any]] = []
    for pid in pids:
        name = "engine" if pid == root_pid else f"worker-{pid}"
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "args": {"name": name}})
        track_ids = allocate_track_ids(tracks[pid])
        for track in tracks[pid]:
            events.append({"name": "thread_name", "ph": "M", "pid": pid,
                           "tid": track_ids[track],
                           "args": {"name": track}})
        mine = sorted((s for s in spans if s.pid == pid),
                      key=lambda s: (s.start_unix_s, s.end_unix_s))
        for span in mine:
            args: Dict[str, Any] = {
                "trace_id": span.trace_id,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
            }
            args.update(span.labels)
            events.append({
                "name": span.name,
                "cat": span.track,
                "ph": "X",
                "pid": pid,
                "tid": track_ids[span.track],
                "ts": (span.start_unix_s - base) * 1e6,
                "dur": span.duration_s * 1e6,
                "args": args,
            })
    return events


def write_trace_spans(path: str, spans: Sequence[Any],
                      root_pid: Optional[int] = None) -> int:
    """Write tracer spans as one Perfetto-loadable JSON file; returns
    the number of bytes written."""
    payload = events_to_chrome_json(
        tracer_spans_to_events(spans, root_pid=root_pid))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)
    return len(payload.encode("utf-8"))


def events_to_chrome_json(events: Sequence[Dict[str, Any]]) -> str:
    """Wrap an event list in the chrome://tracing JSON envelope.

    Compact separators keep the C-accelerated encoder on the fast path
    (indented output falls back to the pure-Python one, which dominated
    the whole export) — the file is for Perfetto, not for eyeballs.
    """
    return json.dumps({
        "traceEvents": list(events),
        "displayTimeUnit": "ms",
    }, separators=(",", ":"))


def trace_to_chrome_json(trace: IterationTrace,
                         process_name: str = "worker0") -> str:
    """Serialize a trace as a chrome://tracing-loadable JSON string."""
    return events_to_chrome_json(trace_to_events(trace, process_name))


def write_chrome_trace(trace: IterationTrace, path: str,
                       process_name: str = "worker0") -> int:
    """Write a single-iteration trace JSON to ``path``; returns the
    number of bytes written."""
    payload = trace_to_chrome_json(trace, process_name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)
    return len(payload.encode("utf-8"))


def write_run_trace(worker_traces: Mapping[str, Sequence[IterationTrace]],
                    path: str, include_counters: bool = True) -> int:
    """Write a multi-worker, multi-iteration trace JSON to ``path``;
    returns the number of bytes written."""
    payload = events_to_chrome_json(
        run_to_events(worker_traces, include_counters=include_counters))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)
    return len(payload.encode("utf-8"))
