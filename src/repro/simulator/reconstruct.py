"""Event-identical trace reconstruction from the batch fast path.

Span-level timeline traces used to be the last reason ``mode="auto"``
fell back to the 6-9x-slower event loop: the vectorized kernel computes
iteration *instants*, not spans.  But every span boundary the event
path emits — bucket pipeline starts and ends, encode/decode instants,
wave schedules, retransmit penalties, optimizer starts — is an
intermediate array the kernel already materializes.  This module asks
the kernel to record those intermediates (the ``record`` dict of
:data:`repro.simulator.batch.FaultedKernel`) and reassembles them into
:class:`~repro.simulator.trace.IterationTrace` objects.

Reconstruction is *exact*, not approximate: the kernel replays the
event path's RNG draw order and floating-point operation order
bit-for-bit (the invariant ``tests/test_batch_equivalence.py`` pins),
and the assembly below replicates the event path's span insertion
order, labels, byte accounting and edge cases (zero-length bucket
spans at world size 1, suppressed wave/aggregate spans, retransmits
only when a delay materialized).  ``tests/test_trace_reconstruction.py``
asserts span-for-span float equality against the event loop across
schemes, world sizes, algorithms, and fault schedules.

Unlike :meth:`DDPSimulator.simulate_iteration`, reconstruction is pure:
it never records metrics, never advances injector run counters, and
never mutates the simulator — it can run after (or instead of) a
``run()`` without disturbing its telemetry.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..faults import FAULT_STREAM, IterationFaults
from .batch import (
    _FaultRows,
    _SlotLayout,
    _plan_baseline_faulted,
    _plan_overlapped_faulted,
    _plan_sequential_faulted,
    _stack_member_faults,
)
from .ddp import DDPSimulator
from .trace import COMM_STREAM, COMPUTE_STREAM, IterationTrace, Span


def reconstruct_traces(sim: DDPSimulator,
                       batch_size: Optional[int] = None,
                       iterations: int = 1,
                       seed: int = 0) -> List[IterationTrace]:
    """Traces for iterations ``0 .. iterations-1``, without the event loop.

    Bit-identical to::

        rng = np.random.default_rng(seed)
        [sim.simulate_iteration(batch_size, rng, iteration=i)
         for i in range(iterations)]

    but computed through the batch kernel (one RNG call, one array
    pass), and side-effect free.

    Raises:
        ConfigurationError: for a non-positive iteration count.
        OutOfMemoryError: the same deterministic OOM the event path
            raises before simulating anything.
    """
    if iterations < 1:
        raise ConfigurationError(
            f"iterations must be >= 1, got {iterations}")
    bs = (batch_size if batch_size is not None
          else sim.model.default_batch_size)
    if sim.config.check_memory:
        sim.check_memory(bs)
    # The faulted planners serve fault-free members too (their fault
    # rows are identity masks), so one layout covers every case.
    layout = _SlotLayout()
    if sim._is_baseline or sim.scheme.ddp_overlap:
        presence_fn, kernel = _plan_baseline_faulted(sim, bs, layout)
        assemble = _assemble_baseline
    elif sim.config.overlap_compression:
        presence_fn, kernel = _plan_overlapped_faulted(sim, bs, layout)
        assemble = _assemble_overlapped
    else:
        presence_fn, kernel = _plan_sequential_faulted(sim, bs, layout)
        assemble = _assemble_sequential
    F, members = _stack_member_faults([sim], iterations)
    present = presence_fn(F)
    J = layout.draw(np.random.default_rng(seed), present)
    record: Dict[str, Any] = {}
    kernel(J, F, members, record=record)
    resolved = members[0][2]
    traces: List[IterationTrace] = []
    for i in range(iterations):
        state = resolved.states[i] if resolved is not None else None
        trace = assemble(i, record, F, state)
        if state is not None and state.active:
            trace.add(Span(FAULT_STREAM, "+".join(state.active),
                           0.0, trace.iteration_end))
        traces.append(trace)
    return traces


def _begin(trace: IterationTrace,
           state: Optional[IterationFaults]) -> float:
    """Replicates ``_start_stall``: the stall span (when any) comes
    first; returns the instant compute may begin."""
    if state is None or state.stall_s <= 0:
        return 0.0
    trace.add(Span(FAULT_STREAM, state.stall_label or "recovery",
                   0.0, state.stall_s))
    return state.stall_s


def _finish(trace: IterationTrace, i: int, rec: Dict[str, Any]) -> None:
    """Replicates ``_finish_optimizer`` from recorded instants."""
    opt_start = float(rec["opt_start"][i])
    iter_end = float(rec["iter_end"][i])
    trace.add(Span(COMPUTE_STREAM, "optimizer", opt_start, iter_end))
    trace.sync_end = float(rec["sync_end"][i])
    trace.iteration_end = iter_end


def _assemble_baseline(i: int, rec: Dict[str, Any], F: _FaultRows,
                       state: Optional[IterationFaults]) -> IterationTrace:
    trace = IterationTrace()
    t0 = _begin(trace, state)
    fwd_end = float(rec["fwd_end"][i])
    trace.add(Span(COMPUTE_STREAM, "forward", t0, fwd_end))
    trace.forward_end = fwd_end
    backward_end = float(rec["backward_end"][i])
    trace.add(Span(COMPUTE_STREAM, "backward", fwd_end, backward_end))
    trace.backward_end = backward_end
    p = int(F.p[i])
    wire_scale = float(rec["wire_row"][i])
    sizes = rec["bucket_sizes"]
    for k in range(sizes.size):
        start = float(rec["bucket_start"][i, k])
        end = float(rec["bucket_end"][i, k])
        payload = float(sizes[k]) * wire_scale
        trace.add(Span(COMM_STREAM, f"bucket{k}", start, end,
                       bytes_on_wire=payload if p > 1 else 0.0))
        delay = float(rec["delays"][i, k])
        if delay > 0:
            trace.add(Span(COMM_STREAM, f"retransmit{k}", end, end + delay,
                           bytes_on_wire=payload
                           * int(rec["replays"][i, k])))
    hook_term = rec["hook_term"]
    if hook_term is not None and float(hook_term[i]) > 0:
        trace.add(Span(COMPUTE_STREAM, "bucket-cast",
                       float(rec["sync_pre_hook"][i]),
                       float(rec["sync_end"][i])))
    _finish(trace, i, rec)
    return trace


def _assemble_sequential(i: int, rec: Dict[str, Any], F: _FaultRows,
                         state: Optional[IterationFaults],
                         ) -> IterationTrace:
    trace = IterationTrace()
    t0 = _begin(trace, state)
    fwd_end = float(rec["fwd_end"][i])
    trace.add(Span(COMPUTE_STREAM, "forward", t0, fwd_end))
    trace.forward_end = fwd_end
    backward_end = float(rec["backward_end"][i])
    trace.add(Span(COMPUTE_STREAM, "backward", fwd_end, backward_end))
    trace.backward_end = backward_end
    encode_end = float(rec["encode_end"][i])
    trace.add(Span(COMPUTE_STREAM, "encode", backward_end, encode_end))
    comm = float(rec["comm"][i])
    wire = float(rec["wire_row"][i])
    if comm > 0:
        agg_end = float(rec["agg_end"][i])
        trace.add(Span(COMM_STREAM, "aggregate", encode_end, agg_end,
                       bytes_on_wire=wire))
        delay = float(rec["delays"][i, 0])
        if delay > 0:
            trace.add(Span(COMM_STREAM, "retransmit", agg_end,
                           agg_end + delay,
                           bytes_on_wire=wire
                           * int(rec["replays"][i, 0])))
    comm_end = float(rec["comm_end"][i])
    trace.add(Span(COMPUTE_STREAM, "decode", comm_end,
                   float(rec["sync_end"][i])))
    _finish(trace, i, rec)
    return trace


def _assemble_overlapped(i: int, rec: Dict[str, Any], F: _FaultRows,
                         state: Optional[IterationFaults],
                         ) -> IterationTrace:
    trace = IterationTrace()
    t0 = _begin(trace, state)
    fwd_end = float(rec["fwd_end"][i])
    trace.add(Span(COMPUTE_STREAM, "forward", t0, fwd_end))
    trace.forward_end = fwd_end
    compute_end = float(rec["backward_end"][i])
    trace.add(Span(COMPUTE_STREAM, "backward+encode", fwd_end, compute_end))
    trace.backward_end = compute_end
    if int(F.p[i]) > 1:
        waves = rec["waves"]
        wire = float(rec["wire_row"][i])
        for w in range(waves):
            start = float(rec["wave_start"][i, w])
            end = float(rec["wave_end"][i, w])
            trace.add(Span(COMM_STREAM, f"wave{w}", start, end,
                           bytes_on_wire=wire / waves))
            delay = float(rec["delays"][i, w])
            if delay > 0:
                trace.add(Span(COMM_STREAM, f"retransmit{w}", end,
                               end + delay,
                               bytes_on_wire=wire / waves
                               * int(rec["replays"][i, w])))
    trace.add(Span(COMPUTE_STREAM, "decode", float(rec["decode_start"][i]),
                   float(rec["sync_end"][i])))
    _finish(trace, i, rec)
    return trace
