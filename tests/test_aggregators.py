"""Distributed aggregators: semantics, traffic accounting, state."""

import numpy as np
import pytest

from repro.compression import (
    ErrorFeedback,
    FP16Compressor,
    FP32Compressor,
    GatherDecodeAggregator,
    MajorityVoteAggregator,
    MeanAllReduceAggregator,
    PowerSGDAggregator,
    SparseGatherAggregator,
    TopKCompressor,
    majority_vote,
    make_aggregator,
)
from repro.errors import CompressionError, ConfigurationError


def grads_for(rng, p, shape=(10, 6)):
    return [rng.normal(size=shape) for _ in range(p)]


class TestMeanAllReduce:
    def test_fp32_is_exact_mean(self, rng):
        grads = grads_for(rng, 4)
        result = MeanAllReduceAggregator(4, FP32Compressor()).step(grads)
        np.testing.assert_allclose(result.update, np.mean(grads, axis=0),
                                   rtol=1e-10)

    def test_bytes_constant_in_p(self, rng):
        for p in (2, 8):
            result = MeanAllReduceAggregator(p, FP32Compressor()).step(
                grads_for(rng, p))
            assert result.bytes_received_per_worker == (
                result.bytes_sent_per_worker)

    def test_collective_is_allreduce(self, rng):
        result = MeanAllReduceAggregator(2, FP16Compressor()).step(
            grads_for(rng, 2))
        assert result.collective == "ring_allreduce"

    def test_rejects_non_allreducible_codec(self):
        with pytest.raises(CompressionError, match="not all-reducible"):
            MeanAllReduceAggregator(2, TopKCompressor(0.1))

    def test_wrong_worker_count_rejected(self, rng):
        agg = MeanAllReduceAggregator(3, FP32Compressor())
        with pytest.raises(CompressionError, match="expected 3"):
            agg.step(grads_for(rng, 2))

    def test_mismatched_shapes_rejected(self, rng):
        agg = MeanAllReduceAggregator(2, FP32Compressor())
        with pytest.raises(CompressionError, match="shape"):
            agg.step([rng.normal(size=(3,)), rng.normal(size=(4,))])


class TestMajorityVote:
    def test_vote_semantics(self):
        tensors = [np.array([-0.5, 2.0]), np.array([-0.1, -1.0]),
                   np.array([-1.7, 3.0])]
        # Paper's example: coords -0.5,-0.1,-1.7 vote to -1.
        np.testing.assert_array_equal(
            majority_vote([np.sign(t) for t in tensors]),
            np.array([-1.0, 1.0]))

    def test_aggregator_votes_signs(self, rng):
        grads = grads_for(rng, 5)
        result = MajorityVoteAggregator(5).step(grads)
        expected = np.where(
            np.sum([np.where(g >= 0, 1.0, -1.0) for g in grads],
                   axis=0) >= 0, 1.0, -1.0)
        np.testing.assert_array_equal(result.update, expected)

    def test_received_bytes_linear_in_p(self, rng):
        shapes = {}
        for p in (2, 8):
            result = MajorityVoteAggregator(p).step(grads_for(rng, p))
            shapes[p] = result.bytes_received_per_worker
        assert shapes[8] == pytest.approx(7 * shapes[2])

    def test_collective_is_allgather(self, rng):
        result = MajorityVoteAggregator(3).step(grads_for(rng, 3))
        assert result.collective == "allgather"

    def test_empty_vote_rejected(self):
        with pytest.raises(CompressionError):
            majority_vote([])


class TestSparseGather:
    def test_topk_with_ef_transmits_everything_eventually(self, rng):
        # A constant gradient: error feedback must eventually push every
        # coordinate through the top-k filter, so the *sum* of updates
        # approaches steps * gradient.
        agg = SparseGatherAggregator(2, TopKCompressor(0.25),
                                     use_error_feedback=True)
        target = rng.normal(size=(4, 4))
        total = np.zeros_like(target)
        steps = 200
        for _ in range(steps):
            total += agg.step([target, target]).update
        np.testing.assert_allclose(total / steps, target, rtol=0.15,
                                   atol=0.05)

    def test_without_ef_small_coords_never_sent(self, rng):
        agg = SparseGatherAggregator(2, TopKCompressor(0.25),
                                     use_error_feedback=False)
        target = np.arange(1.0, 17.0).reshape(4, 4)
        update = agg.step([target, target]).update
        # smallest 75% dropped forever
        assert update[0, 0] == 0.0

    def test_rejects_allreducible_codec(self):
        with pytest.raises(CompressionError, match="all-reducible"):
            SparseGatherAggregator(2, FP32Compressor())


class TestPowerSGDAggregator:
    def test_update_identical_across_calls_given_same_input(self, rng):
        a1 = PowerSGDAggregator(3, rank=2, seed=5)
        a2 = PowerSGDAggregator(3, rank=2, seed=5)
        grads = grads_for(rng, 3)
        np.testing.assert_allclose(a1.step(grads).update,
                                   a2.step(grads).update)

    def test_low_rank_mean_recovered_exactly(self, rng):
        # If all workers hold the same rank-1 matrix, one power iteration
        # reconstructs it exactly.
        u, v = rng.normal(size=(8, 1)), rng.normal(size=(6, 1))
        g = u @ v.T
        agg = PowerSGDAggregator(4, rank=2, seed=0)
        result = agg.step([g, g, g, g])
        np.testing.assert_allclose(result.update, g, atol=1e-8)

    def test_two_messages_and_allreduce(self, rng):
        result = PowerSGDAggregator(2, rank=2).step(grads_for(rng, 2))
        assert result.messages == 2
        assert result.collective == "ring_allreduce"

    def test_cumulative_updates_track_mean_gradient(self, rng):
        # EF property: sum of applied updates ~ sum of true mean grads.
        agg = PowerSGDAggregator(2, rank=1, seed=0)
        target = rng.normal(size=(6, 5))
        total = np.zeros_like(target)
        steps = 60
        for _ in range(steps):
            total += agg.step([target, target]).update
        np.testing.assert_allclose(total / steps, target, rtol=0.25,
                                   atol=0.1)

    def test_warm_start_state_reused(self, rng):
        agg = PowerSGDAggregator(2, rank=2, seed=0)
        grads = grads_for(rng, 2)
        agg.step(grads)
        q_after_first = agg._q.copy()
        agg.step(grads)
        assert agg._q.shape == q_after_first.shape
        assert not np.allclose(agg._q, 0)

    def test_wire_bytes_match_factors(self, rng):
        result = PowerSGDAggregator(2, rank=3).step(
            grads_for(rng, 2, shape=(10, 8)))
        assert result.bytes_sent_per_worker == (10 * 3 + 8 * 3) * 4


class TestGatherDecode:
    def test_unbiased_codec_approximates_mean(self, rng):
        agg = make_aggregator("qsgd", 4, levels=256)
        grads = grads_for(rng, 4)
        update = agg.step(grads).update
        np.testing.assert_allclose(update, np.mean(grads, axis=0),
                                   atol=0.2)

    def test_received_linear_in_p(self, rng):
        r2 = make_aggregator("terngrad", 2).step(grads_for(rng, 2))
        r8 = make_aggregator("terngrad", 8).step(grads_for(rng, 8))
        assert r8.bytes_received_per_worker == pytest.approx(
            7 * r2.bytes_received_per_worker)

    def test_rejects_allreducible(self):
        with pytest.raises(CompressionError):
            GatherDecodeAggregator(2, FP32Compressor())


class TestErrorFeedback:
    def test_first_round_has_no_residual(self, rng):
        ef = ErrorFeedback(2)
        g = rng.normal(size=5)
        np.testing.assert_array_equal(ef.corrected(0, g), g)
        assert ef.residual_norm(0) == 0.0

    def test_residual_added_next_round(self, rng):
        ef = ErrorFeedback(1)
        g = rng.normal(size=5)
        residual = rng.normal(size=5)
        ef.store(0, residual)
        np.testing.assert_allclose(ef.corrected(0, g), g + residual)
        assert ef.residual_norm(0) == pytest.approx(
            np.linalg.norm(residual))

    def test_per_worker_isolation(self, rng):
        ef = ErrorFeedback(2)
        ef.store(0, np.ones(3))
        np.testing.assert_array_equal(ef.corrected(1, np.zeros(3)),
                                      np.zeros(3))

    def test_reset(self, rng):
        ef = ErrorFeedback(1)
        ef.store(0, np.ones(3))
        ef.reset()
        assert ef.residual_norm(0) == 0.0

    def test_shape_mismatch_rejected(self):
        ef = ErrorFeedback(1)
        ef.store(0, np.ones(3))
        with pytest.raises(CompressionError, match="shape"):
            ef.corrected(0, np.ones(4))

    def test_bad_rank_rejected(self):
        ef = ErrorFeedback(2)
        with pytest.raises(CompressionError):
            ef.corrected(5, np.ones(2))


class TestRegistry:
    def test_all_methods_construct_aggregators(self, rng):
        from repro.compression import available_methods
        grads = grads_for(rng, 3)
        for name in available_methods():
            agg = make_aggregator(name, 3)
            result = agg.step(grads)
            assert result.update.shape == grads[0].shape

    def test_unknown_method(self):
        with pytest.raises(ConfigurationError):
            make_aggregator("zipml", 2)

    def test_signsgd_rejects_params(self):
        with pytest.raises(ConfigurationError):
            make_aggregator("signsgd", 2, rank=4)
