"""Time-to-accuracy reasoning (§7's stated future work).

The paper analyzes per-iteration time only and notes that a complete
comparison must also account for the *statistical* cost of lossy
compression — extra iterations to reach the same loss.  This module
closes that loop using the numeric training substrate: it measures, per
method, a **statistical efficiency factor** (iterations the method needs
to reach a reference loss, relative to dense fp32 on the same problem)
and combines it with the performance model's per-iteration time into a
time-to-accuracy estimate.

The factor is measured on the small MLP workload, so it is a *proxy* —
exactly the kind of what-if input the paper envisions a practitioner
supplying — and the API also accepts externally supplied factors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..compression.schemes import Scheme, SyncSGDScheme
from ..errors import ConfigurationError
from ..hardware import GPUSpec, V100
from ..models import ModelSpec
from ..training import gaussian_blobs, train_with_method
from .perf_model import PerfModelInputs, predict

#: Method name -> (aggregator params, learning rate) used when measuring
#: statistical efficiency on the reference problem.
_MEASUREMENT_SETUPS: Dict[str, tuple] = {
    "syncsgd": ({}, 0.2),
    "fp32": ({}, 0.2),
    "fp16": ({}, 0.2),
    "powersgd": ({"rank": 2}, 0.2),
    "topk": ({"fraction": 0.05}, 0.2),
    "randomk": ({"fraction": 0.25}, 0.2),
    "qsgd": ({"levels": 16}, 0.2),
    "terngrad": ({}, 0.2),
    "onebit": ({}, 0.05),
    "signsgd": ({}, 0.01),
    "gradiveq": ({"block": 16, "dims": 4}, 0.2),
    "dgc": ({"fraction": 0.05}, 0.2),
}


def steps_to_loss(losses: Sequence[float], target: float) -> Optional[int]:
    """First step whose *running-average* loss is at or below ``target``
    (running mean of 5 smooths the stochastic step noise)."""
    if target <= 0:
        raise ConfigurationError(f"target loss must be > 0, got {target}")
    window: list = []
    for i, loss in enumerate(losses):
        window.append(loss)
        if len(window) > 5:
            window.pop(0)
        if len(window) == 5 and float(np.mean(window)) <= target:
            return i
    return None


def measure_statistical_efficiency(method: str, target_loss: float = 0.1,
                                   max_steps: int = 400,
                                   num_workers: int = 4,
                                   seed: int = 0) -> float:
    """Iterations-to-target ratio of ``method`` vs dense fp32 (>= ~1).

    Returns ``inf`` when the method never reaches the target within
    ``max_steps`` (e.g. heavily biased methods without error feedback).
    """
    if method not in _MEASUREMENT_SETUPS:
        raise ConfigurationError(
            f"no measurement setup for {method!r}; "
            f"known: {sorted(_MEASUREMENT_SETUPS)}")
    dataset = gaussian_blobs(num_samples=512, num_features=16,
                             num_classes=4, seed=seed)

    def run(name: str) -> Optional[int]:
        params, lr = _MEASUREMENT_SETUPS[name]
        agg_name = "fp32" if name == "syncsgd" else name
        history = train_with_method(
            dataset, agg_name, params or None, num_workers=num_workers,
            steps=max_steps, lr=lr, seed=seed)
        return steps_to_loss(history.losses, target_loss)

    base = run("fp32")
    if base is None:
        raise ConfigurationError(
            f"dense baseline did not reach loss {target_loss} in "
            f"{max_steps} steps — raise max_steps or the target")
    candidate = run(method)
    if candidate is None:
        return float("inf")
    return max(1.0, candidate / max(base, 1))


@dataclass(frozen=True)
class TimeToAccuracy:
    """Wall-clock to reach the dense baseline's quality."""

    scheme: str
    iteration_s: float
    statistical_factor: float

    @property
    def effective_iteration_s(self) -> float:
        """Per-iteration time adjusted for extra iterations needed."""
        return self.iteration_s * self.statistical_factor

    def total_s(self, baseline_iterations: int) -> float:
        """Time to match what the baseline does in
        ``baseline_iterations`` steps."""
        if baseline_iterations < 1:
            raise ConfigurationError(
                f"baseline_iterations must be >= 1, "
                f"got {baseline_iterations}")
        if math.isinf(self.statistical_factor):
            return float("inf")
        return baseline_iterations * self.effective_iteration_s


def time_to_accuracy(model: ModelSpec, scheme: Scheme,
                     inputs: PerfModelInputs,
                     statistical_factor: Optional[float] = None,
                     gpu: GPUSpec = V100) -> TimeToAccuracy:
    """Combine the perf model with a statistical-efficiency factor.

    If ``statistical_factor`` is not supplied it is measured on the
    substrate (slow-ish: trains two small MLPs).
    """
    if statistical_factor is None:
        statistical_factor = measure_statistical_efficiency(scheme.name)
    if statistical_factor < 1.0 and not math.isinf(statistical_factor):
        raise ConfigurationError(
            f"statistical factor must be >= 1, got {statistical_factor}")
    iteration = predict(model, scheme, inputs, gpu).total
    label = ("syncsgd" if isinstance(scheme, SyncSGDScheme)
             else scheme.label)
    return TimeToAccuracy(scheme=label, iteration_s=iteration,
                          statistical_factor=statistical_factor)
