"""Cluster configuration: N instances of a given type.

A :class:`ClusterConfig` is the unit the experiments are parameterized
over ("24 p3.8xlarge instances = 96 GPUs").  It knows how to enumerate its
workers and map a worker rank to its node, which the network fabric uses
to decide whether a transfer crosses the NIC or stays on NVLink.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Tuple

from ..errors import ConfigurationError
from .instances import P3_8XLARGE, InstanceType


@dataclass(frozen=True)
class ClusterConfig:
    """A homogeneous cluster of ``num_nodes`` instances.

    Attributes:
        instance: The instance type every node uses.
        num_nodes: Number of machines.
        seed: Seed for the fabric's bandwidth-heterogeneity draw, so a
            cluster reproduces the same pairwise bandwidths across runs
            (the paper re-measures with iperf3 before every experiment;
            we re-draw per seed).
    """

    instance: InstanceType = P3_8XLARGE
    num_nodes: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigurationError(
                f"num_nodes must be >= 1, got {self.num_nodes}")

    @property
    def world_size(self) -> int:
        """Total number of GPU workers in the cluster."""
        return self.num_nodes * self.instance.gpus_per_node

    @property
    def gpu(self):
        """The GPU spec shared by all workers."""
        return self.instance.gpu

    def node_of(self, rank: int) -> int:
        """Return the node index hosting worker ``rank``."""
        if not 0 <= rank < self.world_size:
            raise ConfigurationError(
                f"rank {rank} out of range for world size {self.world_size}")
        return rank // self.instance.gpus_per_node

    def ranks_on_node(self, node: int) -> List[int]:
        """Return the worker ranks hosted on ``node``."""
        if not 0 <= node < self.num_nodes:
            raise ConfigurationError(
                f"node {node} out of range for {self.num_nodes} nodes")
        g = self.instance.gpus_per_node
        return list(range(node * g, (node + 1) * g))

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        """True when the two workers share a machine (NVLink-connected)."""
        return self.node_of(rank_a) == self.node_of(rank_b)

    def with_nodes(self, num_nodes: int) -> "ClusterConfig":
        """Return a copy with a different node count (scaling sweeps)."""
        return replace(self, num_nodes=num_nodes)

    def with_instance(self, instance: InstanceType) -> "ClusterConfig":
        """Return a copy using a different instance type."""
        return replace(self, instance=instance)

    def describe(self) -> str:
        """Human-readable one-liner, e.g. for experiment logs."""
        return (f"{self.num_nodes}x {self.instance.name} "
                f"({self.world_size} GPUs, {self.gpu.name})")


def cluster_for_gpus(num_gpus: int,
                     instance: InstanceType = P3_8XLARGE,
                     seed: int = 0) -> ClusterConfig:
    """Build the smallest cluster of ``instance`` with >= ``num_gpus`` GPUs.

    The paper reports GPU counts (8, 16, ..., 96); this converts them back
    to node counts.  ``num_gpus`` must be a multiple of the instance's GPU
    count so the advertised world size is exact.
    """
    g = instance.gpus_per_node
    if num_gpus < 1:
        raise ConfigurationError(f"num_gpus must be >= 1, got {num_gpus}")
    if num_gpus % g != 0:
        raise ConfigurationError(
            f"num_gpus={num_gpus} is not a multiple of {g} GPUs per "
            f"{instance.name} node")
    return ClusterConfig(instance=instance, num_nodes=num_gpus // g, seed=seed)


def gpu_scaling_sweep(max_gpus: int,
                      instance: InstanceType = P3_8XLARGE) -> Tuple[ClusterConfig, ...]:
    """Clusters doubling from one node up to ``max_gpus`` GPUs.

    Mirrors the paper's scaling experiments (8 -> 96 GPUs on p3.8xlarge).
    """
    configs: List[ClusterConfig] = []
    nodes = 1
    while nodes * instance.gpus_per_node <= max_gpus:
        configs.append(ClusterConfig(instance=instance, num_nodes=nodes))
        nodes *= 2
    if not configs:
        raise ConfigurationError(
            f"max_gpus={max_gpus} is below one {instance.name} node")
    # Always include the exact top of the sweep if it is not a power of two
    # of the node count (the paper's 24-node / 96-GPU point).
    top_nodes = max_gpus // instance.gpus_per_node
    if top_nodes and configs[-1].num_nodes != top_nodes:
        configs.append(ClusterConfig(instance=instance, num_nodes=top_nodes))
    return tuple(configs)
