"""The shared scaling-sweep harness behind Figures 4-6."""

import math

import pytest

from repro.compression import PowerSGDScheme, SignSGDScheme
from repro.experiments import run_scaling_sweep
from repro.reporting import scaling_chart


@pytest.fixture(scope="module")
def sweep():
    return run_scaling_sweep(
        experiment_id="mini",
        title="mini sweep",
        schemes=[PowerSGDScheme(4), SignSGDScheme()],
        workloads=(("resnet50", 64), ("bert-base", 12)),
        gpu_counts=(8, 64),
        iterations=8, warmup=2)


class TestScalingSweep:
    def test_baseline_always_included(self, sweep):
        schemes = set(sweep.column("scheme"))
        assert "syncsgd" in schemes
        assert len(schemes) == 3

    def test_row_count(self, sweep):
        # 2 workloads x 2 gpu counts x 3 schemes.
        assert len(sweep.rows) == 12

    def test_oom_rows_marked_with_nan(self, sweep):
        oom = sweep.single(model="bert-base", scheme="signsgd", gpus=64)
        assert oom["oom"] is True
        assert math.isnan(oom["mean_ms"])

    def test_oom_notes_explain(self, sweep):
        assert any("OOM at 64 GPUs" in note for note in sweep.notes)

    def test_non_oom_rows_have_times(self, sweep):
        for row in sweep.rows:
            if not row["oom"]:
                assert row["mean_ms"] > 0
                assert row["std_ms"] >= 0

    def test_chartable_with_oom_points(self, sweep):
        # NaN rows must not break the ASCII chart.
        chart = scaling_chart(sweep, "bert-base")
        assert "signsgd" in chart

    def test_render_table_handles_nan(self, sweep):
        text = sweep.render_table()
        assert "nan" in text

    def test_json_round_trip_with_oom(self, sweep):
        from repro.experiments import ExperimentResult
        restored = ExperimentResult.from_json(sweep.to_json())
        oom = restored.single(model="bert-base", scheme="signsgd",
                              gpus=64)
        assert math.isnan(oom["mean_ms"])


class TestFailedJobRows:
    """Engine failures degrade to NaN rows instead of losing the sweep."""

    @pytest.fixture()
    def failing_sweep(self):
        from repro.engine import ExperimentEngine, JobOutcome

        class FailFirstEngine(ExperimentEngine):
            def run_outcomes(self, batch):
                outcomes = super().run_outcomes(batch)
                victim = outcomes[0]
                outcomes[0] = JobOutcome(job=victim.job,
                                         error="a pool worker died",
                                         attempts=3)
                return outcomes

        return run_scaling_sweep(
            experiment_id="mini-failed", title="mini failed sweep",
            schemes=[PowerSGDScheme(4)],
            workloads=(("resnet50", 64),),
            gpu_counts=(8, 16),
            iterations=6, warmup=1,
            engine=FailFirstEngine())

    def test_failed_row_is_nan_not_oom(self, failing_sweep):
        failed = [r for r in failing_sweep.rows
                  if math.isnan(r["mean_ms"])]
        assert len(failed) == 1
        assert failed[0]["oom"] is False

    def test_failure_note_explains(self, failing_sweep):
        notes = [n for n in failing_sweep.notes if n.startswith("failed:")]
        assert len(notes) == 1
        assert "after 3 attempt(s)" in notes[0]
        assert "a pool worker died" in notes[0]

    def test_surviving_rows_intact(self, failing_sweep):
        ok = [r for r in failing_sweep.rows
              if not math.isnan(r["mean_ms"])]
        assert len(ok) == len(failing_sweep.rows) - 1
        assert all(r["mean_ms"] > 0 for r in ok)
