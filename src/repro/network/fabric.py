"""Simulated network fabric.

Transfers are priced with the α+βn model the paper adopts from [51]:
latency term α per message plus size over bandwidth.  On top of that the
fabric adds two effects real datacenter networks exhibit and the paper
leans on to explain its measurements:

* **pairwise bandwidth heterogeneity** — the paper measures bandwidth with
  iperf3 before every run and uses the pairwise *minimum*; we draw a
  symmetric bandwidth matrix around the nominal NIC speed so that the
  probe-and-take-minimum methodology is faithfully reproduced;
* **incast degradation** — all-gather has an all-to-one traffic pattern
  whose TCP throughput collapse the paper cites ([9, 14]) as the reason
  its signSGD model underestimates measured time by ~14%.  The fabric
  degrades effective bandwidth by a per-concurrent-sender factor; the
  analytic performance model deliberately does *not* include this, which
  reproduces the Figure-8 error ordering.

Bandwidth values are bytes/second; times are seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..hardware import ClusterConfig

#: Default α: effective per-hop latency of a pipelined ring step.  NCCL
#: rings over TCP sustain ~10 us per hop once the pipeline is warm; the
#: paper estimates α the same way (tiny all-reduce divided by hops).
DEFAULT_ALPHA_S = 10e-6

#: Default σ of the lognormal bandwidth jitter (fractional).  Small, but
#: across a 24-node cluster the pairwise *minimum* lands a few percent
#: below nominal, as the paper's pre-run iperf3 measurements did.
DEFAULT_BANDWIDTH_JITTER = 0.005

#: Default per-extra-concurrent-sender incast degradation.  Calibrated so
#: a 96-way all-gather runs ~1.6x slower than the α+βn model predicts,
#: matching the paper's observed signSGD underprediction at scale.
DEFAULT_INCAST_PER_SENDER = 0.008


@dataclass
class Fabric:
    """Network connecting the nodes of a cluster.

    Attributes:
        cluster: Topology (nodes, GPUs per node, NIC speed).
        alpha_s: Per-message latency between distinct nodes.
        bandwidth_jitter: Fractional lognormal sigma applied to each
            node pair's bandwidth (0 disables heterogeneity).
        incast_per_sender: Fractional slowdown added per concurrent
            sender beyond the first in fan-in traffic (0 disables).
    """

    cluster: ClusterConfig
    alpha_s: float = DEFAULT_ALPHA_S
    bandwidth_jitter: float = DEFAULT_BANDWIDTH_JITTER
    incast_per_sender: float = DEFAULT_INCAST_PER_SENDER
    _pair_bw: np.ndarray = field(init=False, repr=False)
    #: Memoized pairwise minimum; the simulator queries it per bucket per
    #: iteration, and the O(n^2) matrix scan dominated the hot path.
    #: Invalidated by ``degrade_link``/``degrade_node``.
    _min_bw_cache: Optional[float] = field(default=None, init=False,
                                           repr=False)

    def __post_init__(self) -> None:
        if self.alpha_s < 0:
            raise ConfigurationError(f"alpha_s must be >= 0, got {self.alpha_s}")
        if self.bandwidth_jitter < 0:
            raise ConfigurationError(
                f"bandwidth_jitter must be >= 0, got {self.bandwidth_jitter}")
        if self.incast_per_sender < 0:
            raise ConfigurationError(
                f"incast_per_sender must be >= 0, got {self.incast_per_sender}")
        self._pair_bw = self._draw_bandwidth_matrix()

    def _draw_bandwidth_matrix(self) -> np.ndarray:
        """Symmetric per-node-pair bandwidth matrix (bytes/s).

        Jitter is multiplicative lognormal, capped at the NIC's nominal
        speed: real links underdeliver, they never overdeliver.
        """
        n = self.cluster.num_nodes
        nominal = self.cluster.instance.network_bytes_per_s
        rng = np.random.default_rng(self.cluster.seed)
        matrix = np.full((n, n), nominal)
        if self.bandwidth_jitter > 0 and n > 1:
            draws = rng.lognormal(
                mean=0.0, sigma=self.bandwidth_jitter, size=(n, n))
            draws = np.minimum(np.tril(draws, -1) + np.tril(draws, -1).T, 1.0)
            np.fill_diagonal(draws, 1.0)
            matrix = matrix * draws
        return matrix

    # ----- bandwidth queries ------------------------------------------------

    def pair_bandwidth(self, node_a: int, node_b: int) -> float:
        """Bandwidth between two nodes; intra-node pairs use NVLink."""
        self._check_node(node_a)
        self._check_node(node_b)
        if node_a == node_b:
            return self.cluster.instance.intra_node_bytes_per_s
        return float(self._pair_bw[node_a, node_b])

    def min_bandwidth(self) -> float:
        """The pairwise minimum — the paper's ``BW`` calibration value.

        With a single node there is no inter-node link; NVLink speed is
        returned so downstream formulas stay finite.
        """
        if self._min_bw_cache is None:
            n = self.cluster.num_nodes
            if n == 1:
                self._min_bw_cache = (
                    self.cluster.instance.intra_node_bytes_per_s)
            else:
                off_diag = self._pair_bw[~np.eye(n, dtype=bool)]
                self._min_bw_cache = float(off_diag.min())
        return self._min_bw_cache

    def nominal_bandwidth(self) -> float:
        """The NIC's advertised speed, before jitter."""
        return self.cluster.instance.network_bytes_per_s

    # ----- transfer pricing ---------------------------------------------------

    def transfer_time(self, num_bytes: float, node_a: int, node_b: int) -> float:
        """Seconds to move ``num_bytes`` point-to-point between two nodes."""
        if num_bytes < 0:
            raise ConfigurationError(f"num_bytes must be >= 0, got {num_bytes}")
        bw = self.pair_bandwidth(node_a, node_b)
        alpha = 0.0 if node_a == node_b else self.alpha_s
        return alpha + num_bytes / bw

    def incast_factor(self, fan_in: int) -> float:
        """Effective-bandwidth degradation for ``fan_in`` concurrent
        senders targeting one receiver (>= 1.0)."""
        if fan_in < 1:
            raise ConfigurationError(f"fan_in must be >= 1, got {fan_in}")
        return 1.0 + self.incast_per_sender * (fan_in - 1)

    # ----- fault/heterogeneity injection -----------------------------------

    def degrade_link(self, node_a: int, node_b: int,
                     factor: float) -> None:
        """Multiply one link's bandwidth by ``factor`` in (0, 1].

        Models a congested or mis-cabled link; since collectives run at
        the pace of the slowest participant, one bad link drags the
        whole ring (which is why the paper measures the pairwise
        *minimum*)."""
        self._check_node(node_a)
        self._check_node(node_b)
        if node_a == node_b:
            raise ConfigurationError("cannot degrade a node's NVLink here")
        if not 0 < factor <= 1:
            raise ConfigurationError(
                f"factor must be in (0, 1], got {factor}")
        self._pair_bw[node_a, node_b] *= factor
        self._pair_bw[node_b, node_a] *= factor
        self._min_bw_cache = None

    def degrade_node(self, node: int, factor: float) -> None:
        """Degrade every link touching ``node`` (a straggler NIC)."""
        self._check_node(node)
        if not 0 < factor <= 1:
            raise ConfigurationError(
                f"factor must be in (0, 1], got {factor}")
        for other in range(self.cluster.num_nodes):
            if other != node:
                self._pair_bw[node, other] *= factor
                self._pair_bw[other, node] *= factor
        self._min_bw_cache = None

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.cluster.num_nodes:
            raise ConfigurationError(
                f"node {node} out of range for {self.cluster.num_nodes} nodes")
