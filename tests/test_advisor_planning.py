"""Advisor (§7 what-if for users) and planning extensions."""

import math

import pytest

from repro.compression import (
    PowerSGDScheme,
    SignSGDScheme,
    SyncSGDScheme,
    TopKScheme,
)
from repro.core import (
    PerfModelInputs,
    batch_size_plan,
    default_candidates,
    epoch_time,
    recommend,
    recommend_for_inputs,
    strong_scaling_sweep,
)
from repro.errors import ConfigurationError
from repro.hardware import cluster_for_gpus
from repro.models import get_model
from repro.units import gbps_to_bytes_per_s

BW10 = gbps_to_bytes_per_s(10)


def inputs(p=64, bw=BW10, bs=None):
    return PerfModelInputs(world_size=p, bandwidth_bytes_per_s=bw,
                           batch_size=bs)


class TestAdvisor:
    def test_bert_recommendation_is_powersgd(self):
        rec = recommend(get_model("bert-base"), cluster_for_gpus(64),
                        batch_size=12)
        assert rec.best.scheme_label == "powersgd(rank=4)"
        assert rec.best.speedup_vs_syncsgd > 0.10

    def test_resnet_recommendation_is_not_aggressive_compression(self):
        rec = recommend(get_model("resnet50"), cluster_for_gpus(32),
                        batch_size=64)
        assert rec.best.scheme_label in ("syncsgd", "fp16")

    def test_gather_methods_flagged_infeasible_for_bert_at_scale(self):
        rec = recommend(get_model("bert-base"), cluster_for_gpus(64),
                        batch_size=12)
        by_label = {v.scheme_label: v for v in rec.verdicts}
        assert not by_label["signsgd"].feasible
        assert not by_label["topk(1%)"].feasible
        assert "GB" in by_label["signsgd"].note

    def test_low_bandwidth_flips_the_answer(self):
        slow = recommend_for_inputs(
            get_model("resnet50"), inputs(bw=gbps_to_bytes_per_s(1),
                                          bs=64))
        assert slow.best.scheme_label.startswith("powersgd")

    def test_syncsgd_always_present_and_feasible(self):
        rec = recommend_for_inputs(get_model("resnet101"), inputs(bs=64))
        sync = [v for v in rec.verdicts if v.scheme_label == "syncsgd"]
        assert len(sync) == 1 and sync[0].feasible
        assert sync[0].note == "baseline"

    def test_custom_candidates(self):
        rec = recommend_for_inputs(
            get_model("resnet50"), inputs(bs=64),
            candidates=[SyncSGDScheme(), TopKScheme(0.01)])
        assert len(rec.verdicts) == 2

    def test_empty_candidates_rejected(self):
        with pytest.raises(ConfigurationError):
            recommend_for_inputs(get_model("resnet50"), inputs(),
                                 candidates=[])

    def test_render_marks_best(self):
        rec = recommend_for_inputs(get_model("bert-base"),
                                   inputs(bs=12))
        text = rec.render()
        assert "->" in text and "baseline" in text

    def test_default_candidates_cover_paper_methods(self):
        labels = {c.name for c in default_candidates()}
        assert {"syncsgd", "fp16", "powersgd", "topk", "signsgd"} <= labels


class TestEpochPlanning:
    def test_imagenet_epoch_magnitude(self):
        est = epoch_time(get_model("resnet50"), SyncSGDScheme(),
                         inputs(bs=64), dataset_samples=1_281_167)
        assert est.iterations == math.ceil(1_281_167 / (64 * 64))
        assert 30 < est.epoch_s < 300

    def test_epoch_shrinks_with_more_workers(self):
        small = epoch_time(get_model("resnet50"), SyncSGDScheme(),
                           inputs(p=16, bs=64), dataset_samples=100_000)
        large = epoch_time(get_model("resnet50"), SyncSGDScheme(),
                           inputs(p=96, bs=64), dataset_samples=100_000)
        assert large.epoch_s < small.epoch_s

    def test_batch_plan_prefers_large_batches_per_epoch(self):
        plan = batch_size_plan(get_model("resnet101"), SyncSGDScheme(),
                               inputs(bs=64), dataset_samples=100_000,
                               batch_sizes=(16, 32, 64))
        epochs = [e.epoch_s for e in plan]
        assert epochs == sorted(epochs, reverse=True)

    def test_samples_per_s(self):
        est = epoch_time(get_model("resnet50"), SyncSGDScheme(),
                         inputs(p=32, bs=64), dataset_samples=10_000)
        assert est.samples_per_s == pytest.approx(
            32 * 64 / est.iteration_s)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            epoch_time(get_model("resnet50"), SyncSGDScheme(),
                       inputs(), dataset_samples=0)
        with pytest.raises(ConfigurationError):
            batch_size_plan(get_model("resnet50"), SyncSGDScheme(),
                            inputs(), 100, batch_sizes=())


class TestStrongScaling:
    def test_syncsgd_strong_scaling_saturates(self):
        pts = strong_scaling_sweep(
            get_model("resnet101"), SyncSGDScheme(), inputs(),
            global_batch=2048, world_sizes=[16, 32, 64, 128])
        speedups = [p.speedup_vs_min_world for p in pts]
        # Far sub-linear (8x workers nowhere near 8x), and past the
        # comm-bound knee adding workers stops helping at all.
        assert max(speedups) < 3.0
        assert speedups[-1] <= max(speedups)
        assert pts[-1].per_gpu_batch == 16

    def test_compression_helps_more_under_strong_scaling(self):
        # §7 workload trends: shrinking per-GPU compute leaves comm
        # exposed — compression's relative win grows with scale.
        base = strong_scaling_sweep(
            get_model("resnet101"), SyncSGDScheme(), inputs(),
            global_batch=2048, world_sizes=[16, 128])
        comp = strong_scaling_sweep(
            get_model("resnet101"), PowerSGDScheme(4), inputs(),
            global_batch=2048, world_sizes=[16, 128])
        speedup_small = (base[0].iteration_s - comp[0].iteration_s) \
            / base[0].iteration_s
        speedup_large = (base[1].iteration_s - comp[1].iteration_s) \
            / base[1].iteration_s
        assert speedup_large > speedup_small

    def test_world_must_divide_global_batch(self):
        with pytest.raises(ConfigurationError):
            strong_scaling_sweep(get_model("resnet50"), SyncSGDScheme(),
                                 inputs(), global_batch=100,
                                 world_sizes=[3])


class TestTrainingCost:
    def test_cost_math(self):
        from repro.core import epoch_time, training_cost
        from repro.compression import SyncSGDScheme
        cluster = cluster_for_gpus(64)
        est = epoch_time(get_model("resnet50"), SyncSGDScheme(),
                         inputs(p=64, bs=64), dataset_samples=1_281_167)
        cost = training_cost(est, cluster, epochs=90)
        assert cost.epochs == 90
        assert cost.wall_clock_s == pytest.approx(90 * est.epoch_s)
        assert cost.node_hours == pytest.approx(
            cost.wall_clock_s / 3600 * 16)
        assert cost.total_usd == pytest.approx(
            cost.node_hours * 12.24)
        assert "node-hours" in cost.render()

    def test_slower_scheme_costs_more(self):
        from repro.core import epoch_time, training_cost
        from repro.compression import SyncSGDScheme, TopKScheme
        cluster = cluster_for_gpus(32)
        base = training_cost(
            epoch_time(get_model("resnet50"), SyncSGDScheme(),
                       inputs(p=32, bs=64), dataset_samples=100_000),
            cluster, epochs=10)
        topk = training_cost(
            epoch_time(get_model("resnet50"), TopKScheme(0.01),
                       inputs(p=32, bs=64), dataset_samples=100_000),
            cluster, epochs=10)
        assert topk.total_usd > base.total_usd

    def test_world_size_mismatch_rejected(self):
        from repro.core import epoch_time, training_cost
        from repro.compression import SyncSGDScheme
        est = epoch_time(get_model("resnet50"), SyncSGDScheme(),
                         inputs(p=64, bs=64), dataset_samples=1000)
        with pytest.raises(ConfigurationError):
            training_cost(est, cluster_for_gpus(32), epochs=1)

    def test_zero_epochs_rejected(self):
        from repro.core import epoch_time, training_cost
        from repro.compression import SyncSGDScheme
        est = epoch_time(get_model("resnet50"), SyncSGDScheme(),
                         inputs(p=32, bs=64), dataset_samples=1000)
        with pytest.raises(ConfigurationError):
            training_cost(est, cluster_for_gpus(32), epochs=0)
