"""Ablation: DDP bucket size and overlap (DESIGN.md §5).

Bucketing exists to amortize per-collective latency while keeping enough
buckets for overlap; this ablation sweeps the cap and shows the U-shape
(tiny buckets pay alpha per layer, one giant bucket forfeits overlap),
plus the raw value of overlap itself — the mechanisms §2.2 credits for
optimized syncSGD's speed.
"""

from repro.hardware import cluster_for_gpus
from repro.models import get_model
from repro.simulator import DDPConfig, DDPSimulator
from repro.units import MIB


def bucket_sweep():
    model = get_model("resnet101")
    cluster = cluster_for_gpus(32)
    out = {}
    for cap_mib in (0.25, 1, 25, 10_000):
        cfg = DDPConfig(bucket_cap_bytes=cap_mib * MIB,
                        compute_jitter=0.0, comm_jitter=0.0)
        out[cap_mib] = DDPSimulator(model, cluster, config=cfg).run(
            64, iterations=20, warmup=4).mean * 1e3
    return out


def test_ablation_bucket_size(run_once):
    times = run_once(bucket_sweep)
    print(f"\nbucket-size sweep (ms): "
          + ", ".join(f"{k} MiB: {v:.1f}" for k, v in times.items()))

    # Tiny buckets pay per-bucket latency: worse than the default.
    assert times[0.25] > times[25]
    # One giant bucket kills overlap: worse than the default.
    assert times[10_000] > times[25]


def test_ablation_overlap_value(benchmark):
    """Disabling comm/compute overlap costs real time — the core DDP
    optimization the paper says compression papers ignored."""
    def run():
        model = get_model("bert-base")
        cluster = cluster_for_gpus(32)
        on = DDPSimulator(model, cluster, config=DDPConfig(
            compute_jitter=0.0, comm_jitter=0.0)).run(
            12, iterations=20, warmup=4).mean
        off = DDPSimulator(model, cluster, config=DDPConfig(
            overlap_communication=False, compute_jitter=0.0,
            comm_jitter=0.0)).run(12, iterations=20, warmup=4).mean
        return on, off

    on, off = benchmark.pedantic(run, rounds=1, iterations=1)
    # BERT is communication-heavy: overlap buys a large chunk.
    assert off > 1.25 * on
