"""Terminal and markdown rendering of experiment outputs."""

from .charts import bar_chart, line_chart, scaling_chart
from .markdown import comparison_table, to_markdown
from .metrics_report import metrics_to_markdown, render_metrics
from .reliability import (
    DEFAULT_PENALTY_MARGIN,
    fault_penalty_gap,
    fault_penalty_threshold,
    reliability_findings,
)

__all__ = [
    "line_chart", "bar_chart", "scaling_chart",
    "to_markdown", "comparison_table",
    "render_metrics", "metrics_to_markdown",
    "fault_penalty_gap", "fault_penalty_threshold",
    "reliability_findings", "DEFAULT_PENALTY_MARGIN",
]
