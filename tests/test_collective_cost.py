"""Analytic collective cost models."""

import pytest

from repro.collectives import (
    allgather_time,
    broadcast_time,
    double_tree_allreduce_time,
    parameter_server_time,
    pick_allreduce_time,
    reduce_scatter_time,
    ring_allreduce_time,
)
from repro.errors import ConfigurationError

BW = 1.25e9   # 10 Gbit/s
ALPHA = 25e-6


class TestRingAllreduce:
    def test_matches_paper_equation(self):
        # 2a(p-1) + 2n(p-1)/(p BW)
        n, p = 100e6, 16
        expected = 2 * ALPHA * 15 + 2 * n * 15 / (16 * BW)
        assert ring_allreduce_time(n, p, BW, ALPHA) == pytest.approx(expected)

    def test_single_worker_free(self):
        assert ring_allreduce_time(1e9, 1, BW, ALPHA) == 0.0

    def test_bandwidth_term_nearly_constant_in_p(self):
        # The all-reduce scalability property the paper leans on.
        t16 = ring_allreduce_time(100e6, 16, BW, 0.0)
        t96 = ring_allreduce_time(100e6, 96, BW, 0.0)
        assert t96 / t16 < 1.07

    def test_latency_linear_in_p(self):
        t8 = ring_allreduce_time(0.0, 8, BW, ALPHA)
        t96 = ring_allreduce_time(0.0, 96, BW, ALPHA)
        assert t96 / t8 == pytest.approx(95 / 7)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            ring_allreduce_time(-1, 4, BW, ALPHA)
        with pytest.raises(ConfigurationError):
            ring_allreduce_time(1, 0, BW, ALPHA)
        with pytest.raises(ConfigurationError):
            ring_allreduce_time(1, 4, 0, ALPHA)
        with pytest.raises(ConfigurationError):
            ring_allreduce_time(1, 4, BW, -1)


class TestDoubleTree:
    def test_lower_latency_at_scale(self):
        # Tiny message: tree's log(p) latency beats ring's linear.
        tree = double_tree_allreduce_time(1e3, 96, BW, ALPHA)
        ring = ring_allreduce_time(1e3, 96, BW, ALPHA)
        assert tree < ring

    def test_block_overhead_hurts_small_scale(self):
        # Large message, few nodes: ring wins (NCCL's documented behaviour).
        tree = double_tree_allreduce_time(100e6, 4, BW, ALPHA)
        ring = ring_allreduce_time(100e6, 4, BW, ALPHA)
        assert ring < tree

    def test_pick_chooses_min(self):
        for n, p in ((1e3, 96), (100e6, 4)):
            assert pick_allreduce_time(n, p, BW, ALPHA) == pytest.approx(
                min(ring_allreduce_time(n, p, BW, ALPHA),
                    double_tree_allreduce_time(n, p, BW, ALPHA)))

    def test_invalid_block(self):
        with pytest.raises(ConfigurationError):
            double_tree_allreduce_time(1e6, 8, BW, ALPHA, block_bytes=0)


class TestAllgather:
    def test_linear_in_p(self):
        # The scalability cliff: bytes received grow with p.
        t16 = allgather_time(5e6, 16, BW, 0.0)
        t96 = allgather_time(5e6, 96, BW, 0.0)
        assert t96 / t16 == pytest.approx(95 / 15)

    def test_matches_paper_formula(self):
        # T = g(p-1)/BW (+ latency).
        assert allgather_time(5e6, 96, BW, 0.0) == pytest.approx(
            5e6 * 95 / BW)

    def test_incast_multiplies_bandwidth_term(self):
        base = allgather_time(5e6, 32, BW, 0.0)
        degraded = allgather_time(5e6, 32, BW, 0.0, incast_factor=1.5)
        assert degraded == pytest.approx(1.5 * base)

    def test_incast_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            allgather_time(1e6, 8, BW, ALPHA, incast_factor=0.5)

    def test_single_worker_free(self):
        assert allgather_time(1e6, 1, BW, ALPHA) == 0.0


class TestOtherCollectives:
    def test_reduce_scatter_is_half_ring(self):
        rs = reduce_scatter_time(100e6, 16, BW, ALPHA)
        ring = ring_allreduce_time(100e6, 16, BW, ALPHA)
        assert rs == pytest.approx(ring / 2)

    def test_broadcast_log_rounds(self):
        t = broadcast_time(1e6, 8, BW, ALPHA)
        assert t == pytest.approx(3 * (ALPHA + 1e6 / BW))

    def test_parameter_server_worse_than_ring_at_scale(self):
        ps = parameter_server_time(100e6, 32, BW, ALPHA)
        ring = ring_allreduce_time(100e6, 32, BW, ALPHA)
        assert ps > 10 * ring

    def test_all_free_for_single_worker(self):
        for fn in (reduce_scatter_time, broadcast_time,
                   parameter_server_time):
            assert fn(1e6, 1, BW, ALPHA) == 0.0
