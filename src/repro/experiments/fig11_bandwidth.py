"""Figure 11: what-if on network bandwidth (1-30 Gbit/s).

Higher bandwidth helps syncSGD more than PowerSGD (which is already
encode-bound), so compression's advantage erodes as the network gets
faster.  The paper reports the ResNet-50 crossover near 9 Gbit/s; our
reproduction lands near 10 Gbit/s for the ResNets.  For BERT the paper
reports ~15 Gbit/s; our crossover lands higher (~30 Gbit/s) because the
un-overlappable word-embedding bucket keeps our modeled syncSGD slower at
high bandwidth — the qualitative ordering (BERT crossover >> ResNet
crossover) is preserved and asserted; see EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..compression.schemes import PowerSGDScheme
from ..core import PerfModelInputs, bandwidth_sweep, find_crossover_gbps
from ..models import get_model
from ..units import gbps_to_bytes_per_s
from .runner import ExperimentResult

#: Bandwidth grid (Gbit/s), 1 to 30 as in the figure.
FIG11_BANDWIDTHS: Tuple[float, ...] = (
    1, 2, 3, 5, 7, 9, 11, 13, 15, 20, 25, 30)

#: (model, batch) pairs shown.
FIG11_WORKLOADS: Tuple[Tuple[str, int], ...] = (
    ("resnet50", 64),
    ("resnet101", 64),
    ("bert-base", 12),
)


def run_fig11(num_gpus: int = 64, rank: int = 4,
              bandwidths_gbps: Sequence[float] = FIG11_BANDWIDTHS,
              workloads: Sequence[Tuple[str, int]] = FIG11_WORKLOADS,
              engine=None) -> ExperimentResult:
    """syncSGD vs PowerSGD across the bandwidth sweep.

    The sweep evaluates the closed-form model through the grid kernel;
    passing an ``engine`` routes it through the engine's model-eval
    path instead (per-point caching, family chunking) with byte-
    identical rows.
    """
    rows: List[Dict[str, Any]] = []
    notes: List[str] = []
    for model_name, batch_size in workloads:
        model = get_model(model_name)
        inputs = PerfModelInputs(
            world_size=num_gpus,
            bandwidth_bytes_per_s=gbps_to_bytes_per_s(10.0),
            batch_size=batch_size)
        points = bandwidth_sweep(
            model, PowerSGDScheme(rank=rank), bandwidths_gbps, inputs,
            engine=engine)
        crossover = find_crossover_gbps(points)
        notes.append(
            f"{model_name}: crossover at "
            f"{crossover:.1f} Gbit/s" if crossover is not None
            else f"{model_name}: no crossover within sweep")
        for point in points:
            rows.append({
                "model": model_name,
                "bandwidth_gbps": point.x,
                "syncsgd_ms": point.syncsgd_s * 1e3,
                "powersgd_ms": point.compressed_s * 1e3,
                "speedup": point.speedup,
            })
    return ExperimentResult(
        experiment_id="fig11",
        title=(f"Effect of network bandwidth on PowerSGD rank-{rank} vs "
               f"syncSGD ({num_gpus} GPUs)"),
        columns=("model", "bandwidth_gbps", "syncsgd_ms", "powersgd_ms",
                 "speedup"),
        rows=tuple(rows),
        notes=tuple(notes),
    )
