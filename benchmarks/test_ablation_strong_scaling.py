"""Ablation: strong scaling (extension of §7's workload trends).

The paper evaluates weak scaling; under *strong* scaling the per-GPU
batch shrinks with the worker count, compute stops hiding communication,
and compression's relative value grows — the regime the discussion
section predicts compression becomes useful in.  This ablation sweeps
both regimes with the performance model and asserts the prediction.
"""

from repro.compression import PowerSGDScheme, SyncSGDScheme
from repro.core import (
    PerfModelInputs,
    predict,
    strong_scaling_sweep,
    syncsgd_time,
)
from repro.models import get_model
from repro.units import gbps_to_bytes_per_s

BW10 = gbps_to_bytes_per_s(10)


def run_sweep():
    model = get_model("resnet101")
    inputs = PerfModelInputs(world_size=64, bandwidth_bytes_per_s=BW10)
    worlds = [16, 32, 64, 128]
    base = strong_scaling_sweep(model, SyncSGDScheme(), inputs,
                                global_batch=2048, world_sizes=worlds)
    comp = strong_scaling_sweep(model, PowerSGDScheme(4), inputs,
                                global_batch=2048, world_sizes=worlds)
    weak_speedups = {}
    for p in worlds:
        weak_inputs = PerfModelInputs(
            world_size=p, bandwidth_bytes_per_s=BW10, batch_size=64)
        sync = syncsgd_time(model, weak_inputs).total
        pwr = predict(model, PowerSGDScheme(4), weak_inputs).total
        weak_speedups[p] = (sync - pwr) / sync
    return base, comp, weak_speedups


def test_ablation_strong_scaling(run_once):
    base, comp, weak_speedups = run_once(run_sweep)

    strong_speedups = {
        b.world_size: (b.iteration_s - c.iteration_s) / b.iteration_s
        for b, c in zip(base, comp)}
    print("\nPowerSGD r4 speedup vs syncSGD (ResNet-101, 10 Gbit/s):")
    for p in strong_speedups:
        print(f"  p={p:4d}: strong(global 2048) {strong_speedups[p]:+.1%}"
              f"   weak(bs 64) {weak_speedups[p]:+.1%}")

    # Strong scaling makes compression increasingly attractive once the
    # baseline leaves the deeply compute-bound regime (from p=32 on the
    # curve is monotone; the full sweep flips from negative to strongly
    # positive)...
    ordered = [strong_speedups[p] for p in sorted(strong_speedups)]
    assert ordered[1:] == sorted(ordered[1:])
    assert ordered[-1] > ordered[0] + 0.3
    # ...and at high worker counts it beats its weak-scaling self.
    assert strong_speedups[128] > weak_speedups[128] + 0.1
    # At low worker counts (large per-GPU batch) compression still loses.
    assert strong_speedups[16] < 0.0
    # syncSGD's strong scaling itself saturates or regresses past the
    # comm-bound knee.
    times = [b.iteration_s for b in base]
    assert times[-1] >= min(times)
