"""Figure 12: what-if on compute speed at fixed 10 Gbit/s.

As GPUs get faster, syncSGD becomes communication-bound and stops
improving, while compression keeps gaining (its encode/decode shrinks with
compute too).  The benchmark asserts the paper's qualitative claims:
syncSGD's time saturates; PowerSGD's keeps dropping; the speedup grows
monotonically with the compute factor and exceeds 1.75x well before 4x
compute for ResNet-50.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from ..compression.schemes import PowerSGDScheme
from ..core import PerfModelInputs, compute_sweep
from ..models import get_model
from ..units import gbps_to_bytes_per_s
from .runner import ExperimentResult

#: Compute-speed multipliers swept (1x = today's V100).
FIG12_FACTORS: Tuple[float, ...] = (1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0)

#: (model, batch) pairs shown.
FIG12_WORKLOADS: Tuple[Tuple[str, int], ...] = (
    ("resnet50", 64),
    ("resnet101", 64),
    ("bert-base", 12),
)


def run_fig12(num_gpus: int = 64, rank: int = 4,
              bandwidth_gbps: float = 10.0,
              factors: Sequence[float] = FIG12_FACTORS,
              workloads: Sequence[Tuple[str, int]] = FIG12_WORKLOADS,
              engine=None) -> ExperimentResult:
    """syncSGD vs PowerSGD as compute speeds up, network fixed.

    Grid-kernel evaluated; an ``engine`` adds per-point caching and
    family chunking with byte-identical rows.
    """
    rows: List[Dict[str, Any]] = []
    for model_name, batch_size in workloads:
        model = get_model(model_name)
        inputs = PerfModelInputs(
            world_size=num_gpus,
            bandwidth_bytes_per_s=gbps_to_bytes_per_s(bandwidth_gbps),
            batch_size=batch_size)
        for point in compute_sweep(
                model, PowerSGDScheme(rank=rank), factors, inputs,
                engine=engine):
            rows.append({
                "model": model_name,
                "compute_factor": point.x,
                "syncsgd_ms": point.syncsgd_s * 1e3,
                "powersgd_ms": point.compressed_s * 1e3,
                "speedup_ratio": point.syncsgd_s / point.compressed_s,
            })
    return ExperimentResult(
        experiment_id="fig12",
        title=(f"Effect of compute speedup at {bandwidth_gbps:g} Gbit/s "
               f"(PowerSGD rank-{rank}, {num_gpus} GPUs)"),
        columns=("model", "compute_factor", "syncsgd_ms", "powersgd_ms",
                 "speedup_ratio"),
        rows=tuple(rows),
    )
