"""Markdown export for experiment results.

``render_table`` (on :class:`~repro.experiments.ExperimentResult`)
targets terminals; this module renders the same rows as GitHub-flavoured
markdown so regenerated exhibits can be pasted into EXPERIMENTS.md or a
report.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..errors import ConfigurationError


def _fmt(value: Any, float_format: str) -> str:
    if isinstance(value, float):
        return float_format.format(value)
    return str(value)


def to_markdown(result, float_format: str = "{:.1f}",
                columns: Sequence[str] = ()) -> str:
    """Render an ExperimentResult as a markdown table.

    Args:
        result: Any object with ``columns``, ``rows``, ``title``,
            ``experiment_id`` and ``notes`` (duck-typed so reporting does
            not import experiments).
        float_format: Format spec applied to floats.
        columns: Subset/order of columns; defaults to all.
    """
    cols = list(columns) if columns else list(result.columns)
    missing = [c for c in cols if c not in result.columns]
    if missing:
        raise ConfigurationError(
            f"{result.experiment_id}: unknown columns {missing}")
    lines = [
        f"### {result.experiment_id}: {result.title}",
        "",
        "| " + " | ".join(cols) + " |",
        "|" + "|".join("---" for _ in cols) + "|",
    ]
    for row in result.rows:
        lines.append(
            "| " + " | ".join(_fmt(row[c], float_format) for c in cols)
            + " |")
    for note in result.notes:
        lines.append(f"\n*{note}*")
    return "\n".join(lines)


def comparison_table(rows: Sequence[dict], baseline_key: str,
                     candidate_key: str, label_key: str,
                     float_format: str = "{:.1f}") -> str:
    """Markdown table of candidate-vs-baseline with a speedup column."""
    if not rows:
        raise ConfigurationError("comparison_table requires rows")
    lines = [
        f"| {label_key} | {baseline_key} | {candidate_key} | speedup |",
        "|---|---|---|---|",
    ]
    for row in rows:
        base = float(row[baseline_key])
        cand = float(row[candidate_key])
        if base <= 0:
            raise ConfigurationError(
                f"baseline must be > 0, got {base} for {row[label_key]}")
        speedup = (base - cand) / base
        lines.append(
            f"| {row[label_key]} | {_fmt(base, float_format)} | "
            f"{_fmt(cand, float_format)} | {speedup:+.1%} |")
    return "\n".join(lines)
