#!/usr/bin/env python
"""Validate a ``--trace-run`` Perfetto file and a Prometheus snapshot.

``make trace-smoke`` (and the CI job of the same name) runs a tiny
traced experiment sweep, then points this checker at the two artifacts
it produced:

``--trace PATH``
    A Chrome-trace JSON written by ``repro experiment ... --trace-run``.
    Checked for the envelope shape (``traceEvents`` list), process and
    thread metadata (an ``engine`` process; workers named
    ``worker-<pid>``), well-formed complete (``"X"``) events carrying
    span identity in ``args`` (``trace_id``/``span_id``), a single
    trace id across the file, and span names the instrumented layers
    are known to emit (the experiment/exhibit CLI spans and the
    engine's queue-wait span).

``--prom PATH``
    A text-exposition snapshot written beside the manifest (or by
    ``repro metrics --format prom``).  Validated line by line with
    :func:`repro.telemetry.metrics.validate_prometheus_text`, and
    required to carry the tracing counters
    (``trace_spans_total``/``trace_export_bytes_total``).

Exits non-zero with one problem per line on stderr, so the make target
fails loudly and the CI log says exactly what shape broke.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.telemetry.metrics import validate_prometheus_text  # noqa: E402

#: Span names every traced experiment run must have emitted: the CLI
#: entry span, at least one exhibit span, and the engine's per-job
#: queue-wait span (proof that worker context propagation worked).
REQUIRED_NAME_PREFIXES = ("experiment ", "exhibit ", "queue-wait")

#: Counters the prom snapshot of a traced run must expose.
REQUIRED_COUNTERS = ("trace_spans_total", "trace_export_bytes_total")


def check_trace(path: str) -> List[str]:
    """Structural problems with the Perfetto trace at ``path``."""
    problems: List[str] = []
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        return [f"{path}: unreadable trace JSON: {exc}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        return [f"{path}: no traceEvents list"]

    process_names = set()
    complete = []
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        phase = event.get("ph")
        if phase == "M":
            if event.get("name") == "process_name":
                process_names.add(event.get("args", {}).get("name"))
        elif phase == "X":
            complete.append(event)
            for field in ("name", "pid", "tid", "ts", "dur"):
                if field not in event:
                    problems.append(
                        f"event {i} ({event.get('name')!r}): "
                        f"missing {field!r}")
            args = event.get("args", {})
            for field in ("trace_id", "span_id"):
                if not args.get(field):
                    problems.append(
                        f"event {i} ({event.get('name')!r}): "
                        f"args missing {field!r}")
        else:
            problems.append(f"event {i}: unknown phase {phase!r}")

    if "engine" not in process_names:
        problems.append(f"no 'engine' process metadata "
                        f"(processes: {sorted(map(str, process_names))})")
    if not any(str(n).startswith("worker-") for n in process_names):
        problems.append("no 'worker-<pid>' process metadata — worker "
                        "span propagation produced nothing")
    if not complete:
        problems.append("no complete ('X') span events")

    trace_ids = {e.get("args", {}).get("trace_id") for e in complete}
    trace_ids.discard(None)
    if len(trace_ids) > 1:
        problems.append(f"more than one trace_id in a single run: "
                        f"{sorted(trace_ids)}")

    names = [str(e.get("name", "")) for e in complete]
    for prefix in REQUIRED_NAME_PREFIXES:
        if not any(name.startswith(prefix) for name in names):
            problems.append(f"no span named {prefix!r}*")
    return problems


def check_prom(path: str) -> List[str]:
    """Problems with the Prometheus text snapshot at ``path``."""
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        return [f"{path}: unreadable prom snapshot: {exc}"]
    problems = list(validate_prometheus_text(text))
    for counter in REQUIRED_COUNTERS:
        if f"\n{counter}" not in f"\n{text}":
            problems.append(f"missing counter {counter!r}")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns 0 when every artifact checks out."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", metavar="PATH",
                        help="Perfetto trace JSON from --trace-run")
    parser.add_argument("--prom", metavar="PATH",
                        help="Prometheus text snapshot to validate")
    args = parser.parse_args(argv)
    if not args.trace and not args.prom:
        parser.error("nothing to check: pass --trace and/or --prom")

    problems: List[str] = []
    if args.trace:
        found = check_trace(args.trace)
        problems += [f"trace: {p}" for p in found]
        if not found:
            print(f"trace ok: {args.trace}")
    if args.prom:
        found = check_prom(args.prom)
        problems += [f"prom: {p}" for p in found]
        if not found:
            print(f"prom ok: {args.prom}")
    for problem in problems:
        print(problem, file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
