#!/usr/bin/env python
"""Bottleneck hunting: where does the iteration actually go?

Blocked-time analysis (the methodology of Ousterhout et al. that the
paper's approach descends from) answers "how much faster would training
be if resource X were free?" — which is a sharper question than "how
busy is X?".  This example runs it for three configurations, prints the
per-phase breakdown, the counterfactual speedups, the perf model's
sensitivity to each calibrated input, and closes with a time-to-accuracy
check showing how a statistical-efficiency penalty can erase a
per-iteration win.

Run:  python examples/bottleneck_analysis.py
"""

import numpy as np

from repro.analysis import (
    blocked_time_analysis,
    model_sensitivities,
    time_breakdown,
)
from repro.compression import PowerSGDScheme, SignSGDScheme, SyncSGDScheme
from repro.core import PerfModelInputs, time_to_accuracy
from repro.hardware import cluster_for_gpus
from repro.models import get_model
from repro.simulator import DDPConfig, DDPSimulator
from repro.units import gbps_to_bytes_per_s

CASES = (
    ("bert-base", None, 12, "BERT + syncSGD (communication-heavy)"),
    ("bert-base", PowerSGDScheme(4), 12, "BERT + PowerSGD rank-4"),
    ("resnet101", SignSGDScheme(), 64, "ResNet-101 + signSGD"),
)


def main() -> None:
    cluster = cluster_for_gpus(64)
    quiet = DDPConfig(compute_jitter=0.0, comm_jitter=0.0)

    for model_name, scheme, batch, label in CASES:
        model = get_model(model_name)
        print("=" * 70)
        print(label)
        trace = DDPSimulator(model, cluster, scheme=scheme,
                             config=quiet).simulate_iteration(
            batch, np.random.default_rng(0))
        print(time_breakdown(trace).render())
        report = blocked_time_analysis(model, cluster, scheme=scheme,
                                       batch_size=batch)
        print(report.render())
        print()

    # Which calibration input deserves the most care?
    print("=" * 70)
    print("perf-model sensitivity (BERT at 64 GPUs, 10 Gbit/s):")
    inputs = PerfModelInputs(
        world_size=64, bandwidth_bytes_per_s=gbps_to_bytes_per_s(10),
        batch_size=12)
    for scheme, label in ((SyncSGDScheme(), "syncSGD"),
                          (PowerSGDScheme(4), "PowerSGD r4")):
        sens = model_sensitivities(get_model("bert-base"), scheme, inputs)
        print(f"\n  {label}: most sensitive to '{sens.most_sensitive()}'")
        for line in sens.render().splitlines()[1:]:
            print("  " + line)

    # The accuracy caveat the paper flags as future work.
    print()
    print("=" * 70)
    print("time-to-accuracy: does PowerSGD's BERT win survive a "
          "statistical penalty?")
    bert = get_model("bert-base")
    sync = time_to_accuracy(bert, SyncSGDScheme(), inputs,
                            statistical_factor=1.0)
    for factor in (1.0, 1.1, 1.2, 1.3):
        comp = time_to_accuracy(bert, PowerSGDScheme(4), inputs,
                                statistical_factor=factor)
        delta = (sync.total_s(1000) - comp.total_s(1000)) \
            / sync.total_s(1000)
        print(f"  statistical factor {factor:.1f}: "
              f"net time-to-accuracy {delta:+.1%} "
              f"{'(win gone)' if delta < 0 else ''}")


if __name__ == "__main__":
    main()
