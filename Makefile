PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint bench bench-smoke

## tier-1: the fast unit/behaviour suite (benchmarks/ excluded)
test:
	$(PYTHON) -m pytest

## static checks (ruff; config in pyproject.toml, benchmarks/ excluded)
lint:
	ruff check src tests examples

## full-fidelity paper-exhibit regeneration (slow, opt-in)
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

## one fast figure through the parallel engine + result cache; a second
## invocation should report a ~100% cache hit rate
bench-smoke:
	$(PYTHON) -m repro experiment fig7 --jobs 2 --cache .sim-cache
