"""Core interfaces of the compression package.

Three layers, mirroring how the paper treats compression:

* :class:`Compressor` — the single-tensor math: encode a gradient into a
  compact payload, decode it back.  Stateless; numerically real (numpy).
* :class:`Aggregator` — the distributed semantics: given one gradient per
  worker, produce the update every worker applies, moving payloads
  through the *numeric collectives* (ring all-reduce when the method is
  associative, all-gather otherwise) and tracking how many bytes each
  worker put on the wire.  Stateful (error feedback, warm starts).
* wire/cost planning (:mod:`repro.compression.wire`,
  :mod:`repro.compression.kernel_cost`) — byte and time accounting from a
  :class:`~repro.models.ModelSpec` alone, for the performance model.

Payloads are :class:`Payload` objects: a tuple of numpy arrays plus the
number of bytes the payload occupies on the wire.  Wire bytes are computed
from the *logical* encoding (packed bits for signs, fp16 for half
precision), not from the numpy dtypes used to carry the data around.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import CompressionError


@dataclass(frozen=True)
class Payload:
    """An encoded gradient.

    Attributes:
        arrays: The tensors making up the encoding (e.g. ``(values,
            indices)`` for Top-K, ``(P, Q)`` for PowerSGD).
        wire_bytes: Size of the encoding on the wire, after logical
            packing (bit-packed signs, fp16 halves, ...).
        shape: Shape of the original gradient, needed to decode.
        meta: Small method-specific extras (scales, norms).
    """

    arrays: Tuple[np.ndarray, ...]
    wire_bytes: float
    shape: Tuple[int, ...]
    meta: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.wire_bytes < 0:
            raise CompressionError(
                f"wire_bytes must be >= 0, got {self.wire_bytes}")


class Compressor(abc.ABC):
    """Single-tensor lossy codec.

    Subclasses set three class attributes the paper's Table 1 classifies
    methods by:

    * ``name`` — registry key;
    * ``all_reducible`` — whether aggregation is associative, i.e. the
      payloads of two workers can be combined *before* decoding without
      changing the result (enables ring/tree all-reduce);
    * ``layerwise`` — whether the method operates on one layer's gradient
      at a time (enabling per-bucket overlap) or needs the whole flat
      gradient.
    """

    name: str = "abstract"
    all_reducible: bool = False
    layerwise: bool = True

    @abc.abstractmethod
    def encode(self, grad: np.ndarray) -> Payload:
        """Compress one gradient tensor."""

    @abc.abstractmethod
    def decode(self, payload: Payload) -> np.ndarray:
        """Reconstruct a dense gradient from a payload."""

    def compression_ratio(self, grad: np.ndarray) -> float:
        """Dense bytes divided by wire bytes for this tensor."""
        payload = self.encode(np.asarray(grad, dtype=np.float64))
        if payload.wire_bytes == 0:
            raise CompressionError(f"{self.name}: payload has zero wire bytes")
        return grad.size * 4.0 / payload.wire_bytes

    def _require_floating(self, grad: np.ndarray) -> np.ndarray:
        arr = np.asarray(grad)
        if arr.size == 0:
            raise CompressionError(f"{self.name}: cannot encode empty gradient")
        if not np.issubdtype(arr.dtype, np.floating):
            raise CompressionError(
                f"{self.name}: gradient must be floating point, got {arr.dtype}")
        if not np.all(np.isfinite(arr)):
            raise CompressionError(
                f"{self.name}: gradient contains non-finite values")
        return arr.astype(np.float64, copy=False)


@dataclass(frozen=True)
class AggregationResult:
    """Outcome of one distributed aggregation step.

    Attributes:
        update: The dense update every worker applies (the aggregate the
            method defines: a mean for unbiased codecs, a majority vote
            for signSGD, ...).
        bytes_sent_per_worker: Wire bytes each worker transmitted.
        bytes_received_per_worker: Wire bytes each worker received;
            for all-gather this grows linearly with the world size.
        messages: Number of separate collective calls (latency count —
            PowerSGD pays two, for P and Q).
        collective: Which collective carried the traffic
            (``"ring_allreduce"``, ``"allgather"``, ``"none"``).
    """

    update: np.ndarray
    bytes_sent_per_worker: float
    bytes_received_per_worker: float
    messages: int
    collective: str


class Aggregator(abc.ABC):
    """Distributed aggregation semantics for one gradient slot.

    One instance manages one tensor position (a layer, or the whole flat
    gradient) across all workers: it owns the per-worker error-feedback
    memories and any shared state (PowerSGD's warm-started ``Q``), so it
    must be fed the same number of worker gradients every step.
    """

    name: str = "abstract"
    all_reducible: bool = False

    def __init__(self, num_workers: int):
        if num_workers < 1:
            raise CompressionError(
                f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers

    @abc.abstractmethod
    def step(self, worker_grads: Sequence[np.ndarray]) -> AggregationResult:
        """Aggregate one round of per-worker gradients."""

    def _check_round(self, worker_grads: Sequence[np.ndarray]) -> List[np.ndarray]:
        if len(worker_grads) != self.num_workers:
            raise CompressionError(
                f"{self.name}: expected {self.num_workers} worker gradients, "
                f"got {len(worker_grads)}")
        shape = np.asarray(worker_grads[0]).shape
        out = []
        for rank, grad in enumerate(worker_grads):
            arr = np.asarray(grad, dtype=np.float64)
            if arr.shape != shape:
                raise CompressionError(
                    f"{self.name}: rank {rank} gradient shape {arr.shape} "
                    f"differs from rank 0 shape {shape}")
            out.append(arr)
        return out
