"""Hot tier: sharded LRU semantics, byte budgets, thread safety."""

import threading

import pytest

from repro.engine import MemoryCache
from repro.engine.memcache import payload_nbytes
from repro.errors import ConfigurationError


def _payload(i):
    return {"kind": "predicted", "total": float(i), "compute": 0.5,
            "encode_decode": 0.1, "comm_exposed": 0.4}


class TestBasics:
    def test_roundtrip(self):
        cache = MemoryCache(max_bytes=1 << 20)
        cache.put("a" * 64, _payload(1))
        assert cache.get("a" * 64) == _payload(1)
        assert cache.get("b" * 64) is None
        assert "a" * 64 in cache
        assert len(cache) == 1

    def test_put_refreshes_existing_key(self):
        cache = MemoryCache(max_bytes=1 << 20)
        cache.put("a" * 64, _payload(1))
        cache.put("a" * 64, _payload(2))
        assert cache.get("a" * 64) == _payload(2)
        assert len(cache) == 1

    def test_invalid_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryCache(max_bytes=0)
        with pytest.raises(ConfigurationError):
            MemoryCache(max_bytes=1024, shards=0)

    def test_clear(self):
        cache = MemoryCache(max_bytes=1 << 20)
        cache.put("a" * 64, _payload(1))
        cache.clear()
        assert len(cache) == 0
        assert cache.current_bytes == 0

    def test_info_is_json_shaped(self):
        cache = MemoryCache(max_bytes=4096, shards=2)
        cache.put("a" * 64, _payload(1))
        info = cache.info()
        assert info["max_bytes"] == 4096
        assert info["shards"] == 2
        assert info["entries"] == 1
        assert info["bytes"] == payload_nbytes(_payload(1))


class TestEviction:
    def test_lru_eviction_within_budget(self):
        entry_bytes = payload_nbytes(_payload(0))
        # One shard holding exactly three entries.
        cache = MemoryCache(max_bytes=3 * entry_bytes, shards=1)
        keys = [f"{i:064x}" for i in range(4)]
        for i, key in enumerate(keys[:3]):
            cache.put(key, _payload(i))
        cache.get(keys[0])  # refresh: now keys[1] is least recent
        cache.put(keys[3], _payload(3))
        assert cache.get(keys[1]) is None  # evicted
        assert cache.get(keys[0]) is not None
        assert cache.evictions == 1
        assert cache.current_bytes <= cache.max_bytes

    def test_oversized_entry_not_admitted(self):
        cache = MemoryCache(max_bytes=8, shards=1)
        cache.put("a" * 64, _payload(1))  # > 8 bytes serialized
        assert cache.get("a" * 64) is None
        assert len(cache) == 0
        assert cache.evictions == 0

    def test_bytes_accounting_tracks_contents(self):
        cache = MemoryCache(max_bytes=1 << 20, shards=4)
        keys = [f"{i:064x}" for i in range(10)]
        for i, key in enumerate(keys):
            cache.put(key, _payload(i))
        expected = sum(payload_nbytes(_payload(i)) for i in range(10))
        assert cache.current_bytes == expected


class TestBatchedOps:
    def test_get_many_returns_only_present(self):
        cache = MemoryCache(max_bytes=1 << 20)
        keys = [f"{i:064x}" for i in range(6)]
        cache.put_many((k, _payload(i), None)
                       for i, k in enumerate(keys[:4]))
        found = cache.get_many(keys)
        assert set(found) == set(keys[:4])
        assert found[keys[2]] == _payload(2)

    def test_put_many_with_precomputed_sizes(self):
        cache = MemoryCache(max_bytes=1 << 20)
        key = "a" * 64
        cache.put_many([(key, _payload(1), payload_nbytes(_payload(1)))])
        assert cache.current_bytes == payload_nbytes(_payload(1))

    def test_get_many_refreshes_recency(self):
        entry_bytes = payload_nbytes(_payload(0))
        cache = MemoryCache(max_bytes=2 * entry_bytes, shards=1)
        a, b = "a" * 64, "b" * 64
        cache.put(a, _payload(0))
        cache.put(b, _payload(1))
        cache.get_many([a])  # a becomes most recent
        cache.put("c" * 64, _payload(2))
        assert cache.get(b) is None  # b was evicted, not a
        assert cache.get(a) is not None


class TestThreadSafety:
    def test_concurrent_mixed_traffic(self):
        cache = MemoryCache(max_bytes=1 << 16, shards=4)
        keys = [f"{i:064x}" for i in range(64)]
        errors = []

        def worker(seed):
            try:
                for round_no in range(50):
                    offset = (seed + round_no) % len(keys)
                    cache.put_many(
                        (k, _payload(i), None)
                        for i, k in enumerate(keys[offset:offset + 8]))
                    found = cache.get_many(keys)
                    for key, payload in found.items():
                        assert payload["kind"] == "predicted"
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cache.current_bytes <= cache.max_bytes
