"""Vectorized batch evaluation of a full simulation run.

:meth:`DDPSimulator.run <repro.simulator.ddp.DDPSimulator.run>` needs
only two numbers per iteration — sync time and iteration end — yet the
event path replays the whole span-producing machinery 110 times in pure
Python.  This module computes the same numbers for *all* iterations at
once as NumPy array operations:

* the run's entire jitter sequence is drawn in **one** RNG call: an
  ``(iterations × draws-per-iteration)`` lognormal matrix whose
  row-major fill order is exactly the event path's sequential draw
  order, so both paths consume identical variates from the same seed;
* per-layer backward times become an ``(iterations × layers)`` product
  plus a row-wise prefix sum (bucket-ready times);
* bucket all-reduces are priced once per run through the broadcasting
  collective costs (:func:`repro.collectives.ring_allreduce_time_batch`)
  and pushed through the FIFO comm-stream recurrence
  :func:`repro.core.perf_model.bucket_pipeline_end` — the §4.1 model's
  ``max(γ·T_comp, (k-1)·T_comm) + T_comm(b̂)`` evaluated exactly;
* a jitter-free config needs **no** Monte-Carlo axis at all: every
  iteration is identical, so the kernel runs once (the analytic
  closed form, O(buckets) with no event queue) and the result is
  replicated.

Bit-identity with the event path is a hard invariant, not an
approximation: every elementary IEEE-754 operation is exactly rounded,
so an elementwise array op equals the scalar op on each element, and
this module is written so the *sequence* of operations per element —
multiplication association, ``cumsum`` accumulation order, the
``max``/``+`` pipeline recurrence — matches the event path's exactly.
``tests/test_batch_equivalence.py`` pins the invariant across schemes,
world sizes, algorithms and jitter settings.

What the fast path does not do: fault schedules (per-iteration world
size / bandwidth / stall rewrites) and span-level traces.  Those runs
fall back to the event path — see
:meth:`DDPSimulator.resolve_mode <repro.simulator.ddp.DDPSimulator.resolve_mode>`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from ..collectives import ring_allreduce_time_batch
from ..core.perf_model import bucket_pipeline_end
from ..errors import ConfigurationError
from ..telemetry.metrics import get_registry
from .ddp import FALLBACK_REASONS, DDPSimulator, TimingResult

#: A kernel maps the jitter matrix ``J`` (``n`` rows) to the
#: ``(forward_end, sync_end, iteration_end)`` arrays of all rows.
Kernel = Callable[[np.ndarray, int], Tuple[np.ndarray, np.ndarray, np.ndarray]]


class _DrawPlan:
    """The per-iteration jitter draw pattern, in event-path order.

    The event path draws a lognormal variate per jittered quantity, in a
    fixed order per iteration, and skips the draw entirely when the
    sigma is zero.  Builders register each potential draw here —
    :meth:`column` returns the matrix column that will hold it, or
    ``None`` when no draw happens — and :meth:`draw` then materializes
    the whole run's draws in one RNG call.  ``numpy`` fills the
    ``(n, k)`` output in row-major order: row ``i`` is iteration ``i``'s
    draws left to right, exactly the sequence a threaded generator
    would produce.
    """

    def __init__(self) -> None:
        self.sigmas: List[float] = []

    def column(self, sigma: float) -> Optional[int]:
        """Register one draw; its column index, or ``None`` if skipped."""
        if sigma <= 0:
            return None
        self.sigmas.append(float(sigma))
        return len(self.sigmas) - 1

    def columns(self, sigma: float, count: int) -> Optional[slice]:
        """Register ``count`` consecutive draws of the same sigma."""
        if sigma <= 0 or count == 0:
            return None
        start = len(self.sigmas)
        self.sigmas.extend([float(sigma)] * count)
        return slice(start, start + count)

    def draw(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """All of the run's jitter in one call: an ``(n, k)`` matrix."""
        if not self.sigmas:
            return np.ones((n, 0))
        sigma = np.broadcast_to(
            np.asarray(self.sigmas, dtype=float), (n, len(self.sigmas)))
        return rng.lognormal(mean=0.0, sigma=sigma)


def _col(J: np.ndarray, idx: Optional[int], n: int) -> np.ndarray:
    """Jitter column ``idx``, or an all-ones vector for a skipped draw
    (``x * 1.0`` is an exact identity, matching the event path's
    jitter-of-1.0 shortcut)."""
    if idx is None:
        return np.ones(n)
    return J[:, idx]


def _cols(J: np.ndarray, sl: Optional[slice], n: int,
          count: int) -> np.ndarray:
    """Jitter column block ``sl``, or all-ones for skipped draws."""
    if sl is None:
        return np.ones((n, count))
    return J[:, sl]


def _allreduce_times(sim: DDPSimulator, payloads: np.ndarray,
                     p: int) -> np.ndarray:
    """Vectorized ``sim._allreduce_time`` over an array of payloads.

    Ring (the paper's forced algorithm and the default) broadcasts in
    one expression; the ablation algorithms price per payload through
    the scalar dispatcher — the bucket count is small, and the scalar
    path keeps their exact arithmetic without duplicating it here.
    """
    if sim.config.allreduce_algorithm == "ring":
        return ring_allreduce_time_batch(
            payloads, p, sim.fabric.min_bandwidth(), sim.fabric.alpha_s)
    return np.asarray(
        [sim._allreduce_time(float(b), p) for b in payloads], dtype=float)


# ----- per-path kernel builders ------------------------------------------------
#
# Each builder prices everything iteration-independent once, registers
# the path's draw pattern on the plan (in the event path's exact draw
# order), and returns (kernel, wire bytes per iteration).  The kernels
# replicate the event path's arithmetic operation by operation; the
# comments flag each ordering constraint.


def _plan_baseline(sim: DDPSimulator, bs: int, plan: _DrawPlan,
                   ) -> Tuple[Kernel, float]:
    """syncSGD / ddp_overlap schemes: bucketed, overlapped all-reduce."""
    cfg = sim.config
    p = sim.cluster.world_size
    if sim._is_baseline:
        wire_scale, hook_cost = 1.0, 0.0
    else:
        cost = sim._scheme_cost(p)
        wire_scale = cost.wire_bytes / sim.model.grad_bytes
        hook_cost = cost.encode_decode_s
    overlap = cfg.overlap_communication and p > 1
    stretch = cfg.gamma if overlap else 1.0
    fwd_base = sim._forward_time(bs)
    opt_base = sim._optimizer_time()
    bucket_sizes, close_idx = sim._baseline_bucket_plan()
    nb = len(bucket_sizes)
    # (t * stretch) precomputed; the per-iteration jitter multiplies the
    # product, preserving the event path's (t * stretch) * j association.
    scaled = np.asarray(sim._backward_base_times(bs), dtype=float) * stretch
    if p > 1:
        durs = _allreduce_times(
            sim, np.asarray(bucket_sizes, dtype=float) * wire_scale, p)
    else:
        durs = np.zeros(nb)

    # Event-path draw order: forward, one per backward layer, one per
    # bucket collective (drawn even at p == 1 — the jitter multiply sits
    # outside the p > 1 guard there), bucket-cast only when it exists,
    # optimizer.
    c_fwd = plan.column(cfg.compute_jitter)
    sl_layers = plan.columns(cfg.compute_jitter, scaled.size)
    sl_comm = plan.columns(cfg.comm_jitter, nb)
    c_hook = plan.column(cfg.compute_jitter) if hook_cost > 0 else None
    c_opt = plan.column(cfg.compute_jitter)
    wire = float(sum(bucket_sizes)) * wire_scale if p > 1 else 0.0

    def kernel(J: np.ndarray, n: int):
        fwd_end = fwd_base * _col(J, c_fwd, n)
        layers = scaled * _cols(J, sl_layers, n, scaled.size)
        # Row-wise prefix sum: cumsum accumulates strictly sequentially
        # (never pairwise), matching the event path's running clock.
        completion = np.cumsum(layers, axis=1) + fwd_end[:, None]
        backward_end = completion[:, -1]
        if overlap:
            ready = completion[:, close_idx]
        else:
            ready = np.broadcast_to(backward_end[:, None], (n, nb))
        durations = durs * _cols(J, sl_comm, n, nb)
        sync_end = np.maximum(
            bucket_pipeline_end(ready, durations, fwd_end), backward_end)
        if hook_cost > 0:
            sync_end = sync_end + hook_cost * _col(J, c_hook, n)
        start = np.maximum(sync_end, backward_end)
        iter_end = start + opt_base * _col(J, c_opt, n)
        return fwd_end, sync_end, iter_end

    return kernel, wire


def _plan_sequential(sim: DDPSimulator, bs: int, plan: _DrawPlan,
                     ) -> Tuple[Kernel, float]:
    """Sequential compression: backward → encode → collective → decode."""
    cfg = sim.config
    p = sim.cluster.world_size
    cost = sim._scheme_cost(p)
    fwd_base = sim._forward_time(bs)
    bwd_base = sim._backward_time(bs)
    enc_base = cost.encode_decode_s + sim._hook_overhead()
    comm_base = sim._collective_time(cost, p) if p > 1 else 0.0
    opt_base = sim._optimizer_time()

    # Draw order: forward, backward, encode/decode, collective (only
    # drawn when p > 1 on this path), optimizer.
    c_fwd = plan.column(cfg.compute_jitter)
    c_bwd = plan.column(cfg.compute_jitter)
    c_enc = plan.column(cfg.compute_jitter)
    c_comm = plan.column(cfg.comm_jitter) if p > 1 else None
    c_opt = plan.column(cfg.compute_jitter)
    wire = cost.wire_bytes if p > 1 else 0.0

    def kernel(J: np.ndarray, n: int):
        fwd_end = fwd_base * _col(J, c_fwd, n)
        backward_end = fwd_end + bwd_base * _col(J, c_bwd, n)
        enc_dec = enc_base * _col(J, c_enc, n)
        encode_end = backward_end + enc_dec / 2.0
        if p > 1:
            comm_end = encode_end + comm_base * _col(J, c_comm, n)
        else:
            comm_end = encode_end + 0.0
        sync_end = comm_end + enc_dec / 2.0
        start = np.maximum(sync_end, backward_end)
        iter_end = start + opt_base * _col(J, c_opt, n)
        return fwd_end, sync_end, iter_end

    return kernel, wire


def _plan_overlapped(sim: DDPSimulator, bs: int, plan: _DrawPlan,
                     ) -> Tuple[Kernel, float]:
    """Figure 3's losing strategy: encode interleaved with backward."""
    cfg = sim.config
    p = sim.cluster.world_size
    cost = sim._scheme_cost(p)
    fwd_base = sim._forward_time(bs)
    bwd_base = sim._backward_time(bs)
    enc_base = cost.encode_decode_s + sim._hook_overhead()
    comm_base = 0.0 if p == 1 else sim._collective_time(cost, p)
    opt_base = sim._optimizer_time()
    pen = cfg.contention_penalty
    waves = 4

    # Draw order: forward, backward, encode/decode, the shared wave
    # collective (drawn even at p == 1 on this path), optimizer.
    c_fwd = plan.column(cfg.compute_jitter)
    c_bwd = plan.column(cfg.compute_jitter)
    c_enc = plan.column(cfg.compute_jitter)
    c_comm = plan.column(cfg.comm_jitter)
    c_opt = plan.column(cfg.compute_jitter)
    wire = cost.wire_bytes if p > 1 else 0.0

    def kernel(J: np.ndarray, n: int):
        fwd_end = fwd_base * _col(J, c_fwd, n)
        t_bwd = bwd_base * _col(J, c_bwd, n)
        enc_dec = enc_base * _col(J, c_enc, n)
        stretched = (t_bwd + enc_dec / 2.0) * pen
        compute_end = fwd_end + stretched
        comm_total = comm_base * _col(J, c_comm, n)
        sync_end = compute_end
        if p > 1:
            ready = np.stack(
                [fwd_end + stretched * (w + 1) / waves
                 for w in range(waves)], axis=1)
            sync_end = bucket_pipeline_end(
                ready, (comm_total / waves)[:, None], fwd_end)
        sync_end = np.maximum(sync_end, compute_end) + enc_dec / 2.0
        start = np.maximum(sync_end, compute_end)
        iter_end = start + opt_base * _col(J, c_opt, n)
        return fwd_end, sync_end, iter_end

    return kernel, wire


# ----- entry point -------------------------------------------------------------


def run_batch(sim: DDPSimulator, batch_size: Optional[int] = None,
              iterations: int = 110, warmup: int = 10,
              seed: int = 0) -> TimingResult:
    """Evaluate a whole measurement run as array operations.

    Produces a :class:`TimingResult` bit-identical to
    ``sim.run(..., mode="event")`` for any fault-free simulator.  Do not
    call with a fault-schedule-bearing simulator —
    :meth:`DDPSimulator.run` routes those to the event path.

    Raises:
        ConfigurationError: invalid iteration protocol, or a simulator
            the fast path cannot serve (attached fault injector).
        OutOfMemoryError: the same deterministic OOM the event path
            raises on its first iteration (checked once — it cannot
            vary across iterations).
    """
    if iterations <= warmup:
        raise ConfigurationError(
            f"iterations ({iterations}) must exceed warmup ({warmup})")
    reason = sim.batch_fallback_reason()
    if reason is not None:
        raise ConfigurationError(
            f"batch fast path cannot serve this simulator: "
            f"{FALLBACK_REASONS[reason]}")
    bs = batch_size if batch_size is not None else sim.model.default_batch_size
    if sim.config.check_memory:
        sim.check_memory(bs)

    plan = _DrawPlan()
    if sim._is_baseline or sim.scheme.ddp_overlap:
        kernel, wire = _plan_baseline(sim, bs, plan)
    elif sim.config.overlap_compression:
        kernel, wire = _plan_overlapped(sim, bs, plan)
    else:
        kernel, wire = _plan_sequential(sim, bs, plan)

    # The analytic closed form: with every sigma zero there is nothing
    # stochastic — no draws happen on either path — so one kernel row
    # is the whole run.
    n = iterations if plan.sigmas else 1
    J = plan.draw(np.random.default_rng(seed), n)
    fwd_end, sync_end, iter_end = kernel(J, n)
    sync = sync_end - fwd_end

    measured = iterations - warmup
    if n == 1:
        sync_times = (float(sync[0]),) * measured
        iter_times = (float(iter_end[0]),) * measured
    else:
        sync_times = tuple(float(x) for x in sync[warmup:])
        iter_times = tuple(float(x) for x in iter_end[warmup:])

    registry = get_registry()
    if registry.enabled:
        label = sim.scheme.label
        registry.counter("sim_iterations_total",
                         scheme=label).inc(iterations)
        hist = registry.histogram("sim_sync_time_s", scheme=label)
        if n == 1:
            for _ in range(iterations):
                hist.observe(float(sync[0]))
        else:
            for value in sync:
                hist.observe(float(value))
        if wire > 0:
            registry.counter("sim_wire_bytes_total",
                             scheme=label).inc(wire * iterations)

    return TimingResult(
        model=sim.model.name,
        scheme=sim.scheme.label,
        world_size=sim.cluster.world_size,
        batch_size=bs,
        sync_times=sync_times,
        iteration_times=iter_times,
    )
