"""Observability: labeled metrics, structured logs, run manifests.

The measurement layer under the reproduction, mirroring the paper's own
methodology (Nsight traces, per-phase breakdowns): simulator, collective
cost models and the experiment engine record into a process-global
metrics registry; the CLI snapshots it into run manifests and the
``--metrics`` report.  Disabled (the default), every call site hits a
shared no-op handle — zero allocations, no RNG interaction, bit-identical
simulated timelines.
"""

from .logs import LEVELS, StructuredLogger, configure, get_logger
from .manifest import (
    MANIFEST_FILENAME,
    MANIFEST_VERSION,
    build_manifest,
    read_manifest,
    verify_manifest,
    write_manifest,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    disable,
    enable,
    format_key,
    get_registry,
    metric_key,
    set_registry,
)

__all__ = [
    "Counter", "Gauge", "Histogram",
    "MetricsRegistry", "NullRegistry",
    "get_registry", "set_registry", "enable", "disable",
    "metric_key", "format_key",
    "StructuredLogger", "get_logger", "configure", "LEVELS",
    "MANIFEST_FILENAME", "MANIFEST_VERSION",
    "build_manifest", "write_manifest", "read_manifest", "verify_manifest",
]
