"""signSGD with majority vote [12, 13].

Encode: keep only the sign of each coordinate, bit-packed — 1 bit per
32-bit float, ~32x compression.  Aggregate: *majority vote* across
workers, ``sign(sum_i sign(g_i))``.

The vote is **not associative** — ``sign(sign(a+b) + sign(c))`` differs
from ``sign(sign(a) + sign(b+c))`` — so workers cannot ring-all-reduce
their payloads; they must all-gather all ``p`` sign vectors and vote
locally.  Received volume and decode work therefore grow linearly with
``p``, which is the paper's §3.2 explanation for signSGD taking ~1075 ms
at 96 GPUs on ResNet-101 while syncSGD needs ~265 ms.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import CompressionError
from .base import AggregationResult, Aggregator, Compressor, Payload


class SignSGDCompressor(Compressor):
    """Bit-packed sign compressor.

    Zero is mapped to +1 (a tie-break every implementation must pick;
    matching ``np.sign`` would waste a symbol on an event of measure
    zero).  The decoded tensor is the unit-magnitude sign pattern — the
    optimizer's learning rate carries the step size, as in the signSGD
    paper.
    """

    name = "signsgd"
    all_reducible = False
    layerwise = True

    def encode(self, grad: np.ndarray) -> Payload:
        arr = self._require_floating(grad)
        bits = (arr.reshape(-1) >= 0.0)
        packed = np.packbits(bits)
        return Payload(
            arrays=(packed,),
            wire_bytes=float(np.ceil(arr.size / 8.0)),
            shape=arr.shape,
            meta={"numel": float(arr.size)},
        )

    def decode(self, payload: Payload) -> np.ndarray:
        numel = int(payload.meta["numel"])
        bits = np.unpackbits(payload.arrays[0], count=numel)
        signs = np.where(bits.astype(bool), 1.0, -1.0)
        return signs.reshape(payload.shape)


def majority_vote(sign_tensors: Sequence[np.ndarray]) -> np.ndarray:
    """``sign(sum_i sign_i)`` with ties broken toward +1 (consistent with
    the encoder's zero convention)."""
    if len(sign_tensors) == 0:
        raise CompressionError("majority vote needs at least one worker")
    total = np.sum(sign_tensors, axis=0)
    return np.where(total >= 0.0, 1.0, -1.0)


class MajorityVoteAggregator(Aggregator):
    """Full signSGD aggregation: encode per worker, all-gather the packed
    sign vectors, unpack all ``p`` of them and vote.

    The returned update is the voted sign pattern (unit magnitude).  Note
    the received bytes: ``(p-1)`` payloads per worker — the linear term.
    """

    name = "signsgd"
    all_reducible = False

    def __init__(self, num_workers: int):
        super().__init__(num_workers)
        self._codec = SignSGDCompressor()

    def step(self, worker_grads: Sequence[np.ndarray]) -> AggregationResult:
        grads = self._check_round(worker_grads)
        payloads = [self._codec.encode(g) for g in grads]
        # All-gather: every worker receives every other worker's payload.
        decoded = [self._codec.decode(p) for p in payloads]
        update = majority_vote(decoded)
        wire = payloads[0].wire_bytes
        return AggregationResult(
            update=update,
            bytes_sent_per_worker=wire,
            bytes_received_per_worker=wire * (self.num_workers - 1),
            messages=1,
            collective="allgather",
        )
