"""Ablation: ring vs double-tree all-reduce (DESIGN.md §5).

The paper forces NCCL's ring algorithm; NCCL itself picks dynamically.
This ablation shows where each algorithm wins in our cost model — the
trade NCCL's heuristic encodes — and that the experiment-level
conclusions do not depend on the choice.
"""

from repro.collectives import (
    double_tree_allreduce_time,
    pick_allreduce_time,
    ring_allreduce_time,
)
from repro.hardware import cluster_for_gpus
from repro.models import get_model
from repro.simulator import DDPConfig, DDPSimulator


def sweep():
    rows = []
    bw, alpha = 1.25e9, 25e-6
    for num_bytes in (4e3, 1e6, 25e6, 100e6):
        for p in (8, 32, 96, 512):
            rows.append({
                "bytes": num_bytes,
                "p": p,
                "ring_ms": ring_allreduce_time(num_bytes, p, bw, alpha) * 1e3,
                "tree_ms": double_tree_allreduce_time(
                    num_bytes, p, bw, alpha) * 1e3,
            })
    return rows


def test_ablation_ring_vs_tree(run_once):
    rows = run_once(sweep)

    # Small messages at large scale: tree's log-latency wins.
    tiny_huge = next(r for r in rows if r["bytes"] == 4e3 and r["p"] == 512)
    assert tiny_huge["tree_ms"] < tiny_huge["ring_ms"]

    # Big messages at small scale: ring's zero block overhead wins.
    big_small = next(r for r in rows if r["bytes"] == 100e6 and r["p"] == 8)
    assert big_small["ring_ms"] < big_small["tree_ms"]

    # pick_allreduce always matches the better of the two.
    for r in rows:
        best = min(r["ring_ms"], r["tree_ms"])
        assert pick_allreduce_time(r["bytes"], r["p"], 1.25e9,
                                   25e-6) * 1e3 == best


def test_ablation_algorithm_choice_does_not_flip_conclusions(benchmark):
    """The fig-4 conclusion (PowerSGD no win on ResNet at bs 64) holds
    under either all-reduce algorithm."""
    from repro.compression import PowerSGDScheme

    def run():
        out = {}
        for algo in ("ring", "double_tree"):
            cfg = DDPConfig(allreduce_algorithm=algo, compute_jitter=0.0,
                            comm_jitter=0.0)
            cluster = cluster_for_gpus(64)
            model = get_model("resnet50")
            base = DDPSimulator(model, cluster, config=cfg).run(
                64, iterations=20, warmup=4).mean
            comp = DDPSimulator(model, cluster, scheme=PowerSGDScheme(4),
                                config=cfg).run(
                64, iterations=20, warmup=4).mean
            out[algo] = (base, comp)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    for algo, (base, comp) in out.items():
        assert comp > 0.93 * base, algo
