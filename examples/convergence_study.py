#!/usr/bin/env python
"""Convergence study: what compression costs in *accuracy terms*.

The paper's timing analysis is deliberately generous to compression — it
ignores accuracy loss.  This example runs the numeric training substrate:
four logical workers train the same MLP on a synthetic classification
task, with gradients flowing through the *real* compressors, error
feedback and collectives.  It reports, per method, the final loss and
accuracy, the bytes each worker put on the wire, and the bytes it
received (where the all-gather methods' linear-in-p cost shows up).

Run:  python examples/convergence_study.py
(``REPRO_EXAMPLES_SMOKE=1`` trims the step count for CI.)
"""

import os

from repro.training import gaussian_blobs, train_with_method

METHODS = [
    # (name, params, learning rate)
    ("fp32", None, 0.2),
    ("fp16", None, 0.2),
    ("powersgd", {"rank": 2}, 0.2),
    ("topk", {"fraction": 0.05}, 0.2),
    ("randomk", {"fraction": 0.25}, 0.2),
    ("qsgd", {"levels": 16}, 0.2),
    ("terngrad", None, 0.2),
    ("gradiveq", {"block": 16, "dims": 4}, 0.2),
    ("onebit", None, 0.05),
    ("signsgd", None, 0.01),
]


def main() -> None:
    dataset = gaussian_blobs(num_samples=1024, num_features=16,
                             num_classes=4, seed=7)
    smoke = os.environ.get("REPRO_EXAMPLES_SMOKE") == "1"
    workers, steps = 4, (30 if smoke else 150)
    print(f"data-parallel MLP training: {workers} workers, {steps} steps, "
          f"{dataset.num_samples} samples, {dataset.num_classes} classes\n")
    header = (f"{'method':<10} {'final loss':>10} {'accuracy':>9} "
              f"{'sent/worker':>12} {'recv/worker':>12}")
    print(header)
    print("-" * len(header))

    baseline_sent = None
    for name, params, lr in METHODS:
        history = train_with_method(
            dataset, name, params, hidden_dims=(32, 32),
            num_workers=workers, steps=steps, batch_size=32, lr=lr,
            seed=11)
        sent = history.bytes_sent_per_worker
        recv = history.bytes_received_per_worker
        if baseline_sent is None:
            baseline_sent = sent
        print(f"{name:<10} {history.final_loss:>10.4f} "
              f"{history.final_accuracy:>8.1%} "
              f"{sent / 1e6:>10.2f}MB {recv / 1e6:>10.2f}MB"
              + (f"   ({baseline_sent / sent:>5.1f}x less traffic)"
                 if sent < baseline_sent else ""))

    print("\nreadings:")
    print("  * every unbiased or error-feedback method reaches the dense")
    print("    accuracy — compression semantics are implemented correctly;")
    print("  * signSGD needs its own learning-rate regime (unit-magnitude")
    print("    updates), the hidden tuning cost the paper alludes to;")
    print("  * gather methods (topk/qsgd/terngrad/onebit/signsgd) receive")
    print("    (p-1)x what they send — the §3.2 scalability cliff, visible")
    print("    even at 4 workers.")


if __name__ == "__main__":
    main()
