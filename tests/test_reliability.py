"""The reliability exhibit and its threshold-analysis helpers."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments import EXPERIMENTS, EXTRA_EXPERIMENTS
from repro.experiments.reliability import run_reliability
from repro.reporting import (
    fault_penalty_gap,
    fault_penalty_threshold,
    reliability_findings,
)


def _row(fault, scheme, gbps, penalty):
    return {"fault": fault, "scheme": scheme, "gbps": gbps,
            "penalty": penalty}


#: A synthetic sweep where compression's robustness edge dies at 25:
#: gaps vs syncsgd are 1.0 / 0.5 / 0.2 / 0.02 at 2 / 5 / 25 / 100.
SYNTHETIC = [
    _row("nic", "syncsgd", 2.0, 3.0), _row("nic", "powersgd", 2.0, 2.0),
    _row("nic", "syncsgd", 5.0, 2.0), _row("nic", "powersgd", 5.0, 1.5),
    _row("nic", "syncsgd", 25.0, 1.4), _row("nic", "powersgd", 25.0, 1.2),
    _row("nic", "syncsgd", 100.0, 1.05),
    _row("nic", "powersgd", 100.0, 1.03),
]


class TestPenaltyGap:
    def test_gap_ascending_by_bandwidth(self):
        gaps = fault_penalty_gap(SYNTHETIC, "nic", "powersgd")
        assert [p["gbps"] for p in gaps] == [2.0, 5.0, 25.0, 100.0]
        assert gaps[0]["gap"] == pytest.approx(1.0)
        assert gaps[-1]["gap"] == pytest.approx(0.02)

    def test_nan_rows_skipped(self):
        rows = SYNTHETIC + [_row("nic", "syncsgd", 50.0, float("nan")),
                            _row("nic", "powersgd", 50.0, 1.1)]
        gaps = fault_penalty_gap(rows, "nic", "powersgd")
        assert 50.0 not in [p["gbps"] for p in gaps]

    def test_missing_scheme_raises(self):
        with pytest.raises(ConfigurationError):
            fault_penalty_gap(SYNTHETIC, "nic", "topk")
        with pytest.raises(ConfigurationError):
            fault_penalty_gap(SYNTHETIC, "disk-fire", "powersgd")


class TestPenaltyThreshold:
    def test_threshold_is_top_of_contiguous_region(self):
        assert fault_penalty_threshold(SYNTHETIC, "nic", "powersgd",
                                       margin=0.10) == 25.0
        assert fault_penalty_threshold(SYNTHETIC, "nic", "powersgd",
                                       margin=0.40) == 5.0

    def test_no_edge_returns_none(self):
        assert fault_penalty_threshold(SYNTHETIC, "nic", "powersgd",
                                       margin=2.0) is None

    def test_region_must_start_at_lowest_bandwidth(self):
        # Gap clears the margin only at 5 — not contiguous from the
        # bottom of the sweep, so there is no "below X" threshold.
        rows = [
            _row("nic", "syncsgd", 2.0, 1.0), _row("nic", "powersgd", 2.0, 1.0),
            _row("nic", "syncsgd", 5.0, 2.0), _row("nic", "powersgd", 5.0, 1.0),
        ]
        assert fault_penalty_threshold(rows, "nic", "powersgd",
                                       margin=0.10) is None


class TestFindings:
    def test_edge_reported_with_threshold(self):
        notes = reliability_findings(SYNTHETIC, "nic", ["powersgd"])
        assert len(notes) == 1
        assert "materially more robust than syncsgd below 25 Gbit/s" \
            in notes[0]

    def test_no_edge_reported_as_such(self):
        notes = reliability_findings(SYNTHETIC, "nic", ["powersgd"],
                                     margin=2.0)
        assert "no material robustness edge" in notes[0]


class TestReliabilityExhibit:
    @pytest.fixture(scope="class")
    def result(self):
        return run_reliability(num_gpus=8, bandwidths_gbps=(2.0, 100.0),
                               iterations=10, warmup=2)

    def test_row_shape(self, result):
        assert result.experiment_id == "reliability"
        row = result.rows[0]
        for key in ("fault", "scheme", "gbps", "clean_ms", "faulted_ms",
                    "penalty"):
            assert key in row
        # 2 faults x 4 schemes x 2 bandwidths.
        assert len(result.rows) == 16

    def test_penalties_are_slowdowns(self, result):
        for row in result.rows:
            assert math.isfinite(row["penalty"])
            assert row["penalty"] >= 0.95  # faults never speed things up

    def test_nic_straggler_hurts_dense_most_at_low_bandwidth(self, result):
        at_2 = {row["scheme"]: row["penalty"] for row in result.rows
                if row["fault"] == "nic-straggler" and row["gbps"] == 2.0}
        assert at_2["syncsgd"] > at_2["powersgd(rank=4)"] + 0.25
        # ... and the gap closes once bandwidth is plentiful.
        at_100 = {row["scheme"]: row["penalty"] for row in result.rows
                  if row["fault"] == "nic-straggler"
                  and row["gbps"] == 100.0}
        assert (at_100["syncsgd"] - at_100["powersgd(rank=4)"]
                < at_2["syncsgd"] - at_2["powersgd(rank=4)"])

    def test_compute_straggler_is_scheme_neutral_at_low_bandwidth(
            self, result):
        # The control: a compute straggler gives compression no
        # comparable edge (if anything, comm-heavy schemes hide it).
        nic_gap = max(
            row["penalty"] for row in result.rows
            if row["fault"] == "nic-straggler" and row["gbps"] == 2.0
            and row["scheme"] == "syncsgd") - min(
            row["penalty"] for row in result.rows
            if row["fault"] == "nic-straggler" and row["gbps"] == 2.0
            and row["scheme"] == "powersgd(rank=4)")
        compute_gap = max(
            row["penalty"] for row in result.rows
            if row["fault"] == "compute-straggler" and row["gbps"] == 2.0
            and row["scheme"] == "syncsgd") - min(
            row["penalty"] for row in result.rows
            if row["fault"] == "compute-straggler" and row["gbps"] == 2.0
            and row["scheme"] == "powersgd(rank=4)")
        assert nic_gap > compute_gap + 0.25

    def test_notes_carry_findings(self, result):
        assert result.notes
        assert any("nic-straggler" in note for note in result.notes)

    def test_registered_as_extra_not_core(self):
        assert "reliability" in EXTRA_EXPERIMENTS
        assert "reliability" not in EXPERIMENTS
