#!/usr/bin/env python
"""Docstring-coverage gate for the public fault, engine and serving APIs.

``make lint`` runs this after ruff.  It walks the AST of every module
under the audited packages and fails (exit 1, one line per offender)
if a *public* function, method, or class lacks a docstring.  Public
means: name does not start with ``_``, and for methods, neither does
the enclosing class.  Dunder methods are exempt except ``__init__``
when it declares parameters beyond ``self`` (constructor parameters
are API surface).

Usage: python tools/check_docstrings.py [package-dir ...]
Defaults to the packages the reliability PR introduced or reworked.
"""

from __future__ import annotations

import ast
import os
import sys
from typing import Iterator, List, Tuple

#: Directories audited when no arguments are given, relative to the
#: repository root (this file's parent's parent).
DEFAULT_TARGETS = (
    os.path.join("src", "repro", "faults"),
    os.path.join("src", "repro", "engine"),
    os.path.join("src", "repro", "serving"),
)


def iter_python_files(root: str) -> Iterator[str]:
    """Yield every ``.py`` file under ``root``, sorted for stable output."""
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def needs_docstring(node: ast.AST, class_name: str = "") -> bool:
    """Whether ``node`` is part of the public API surface.

    ``class_name`` is the enclosing class for methods ("" at module
    level); a private class exempts all of its methods.
    """
    name = getattr(node, "name", "")
    if class_name.startswith("_"):
        return False
    if name.startswith("__") and name.endswith("__"):
        if name != "__init__":
            return False
        args = node.args  # type: ignore[attr-defined]
        params = (len(args.posonlyargs) + len(args.args)
                  + len(args.kwonlyargs))
        has_variadic = args.vararg is not None or args.kwarg is not None
        return params > 1 or has_variadic
    return not name.startswith("_")


def missing_docstrings(path: str) -> List[Tuple[int, str]]:
    """``(line, qualified name)`` of every public definition in ``path``
    that lacks a docstring."""
    with open(path, "r", encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)
    offenders: List[Tuple[int, str]] = []

    def visit(body, class_name: str = "") -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                if needs_docstring(node, class_name):
                    if ast.get_docstring(node) is None:
                        qualified = (f"{class_name}.{node.name}"
                                     if class_name else node.name)
                        offenders.append((node.lineno, qualified))
                if isinstance(node, ast.ClassDef):
                    visit(node.body, node.name)

    visit(tree.body)
    return offenders


def main(argv: List[str]) -> int:
    """Check every target; print offenders; exit non-zero if any."""
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    targets = argv or [os.path.join(repo_root, t) for t in DEFAULT_TARGETS]
    failures = 0
    checked = 0
    for target in targets:
        if not os.path.isdir(target):
            print(f"check_docstrings: no such directory: {target}",
                  file=sys.stderr)
            return 2
        for path in iter_python_files(target):
            checked += 1
            for line, name in missing_docstrings(path):
                rel = os.path.relpath(path, repo_root)
                print(f"{rel}:{line}: public `{name}` has no docstring")
                failures += 1
    if failures:
        print(f"\ndocstring check failed: {failures} public definition(s) "
              f"undocumented across {checked} file(s)")
        return 1
    print(f"docstring check passed ({checked} file(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
