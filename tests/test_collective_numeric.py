"""Numeric collectives: step-level correctness."""

import numpy as np
import pytest

from repro.collectives import (
    allgather,
    broadcast,
    is_allreduce_safe,
    parameter_server_reduce,
    reduce_scatter,
    ring_allreduce,
    tree_allreduce,
)
from repro.errors import CollectiveError


def worker_arrays(rng, p, shape=(37,)):
    return [rng.normal(size=shape) for _ in range(p)]


class TestRingAllreduce:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 7, 8, 16])
    def test_sum_for_any_world_size(self, rng, p):
        arrays = worker_arrays(rng, p)
        expected = np.sum(arrays, axis=0)
        for out in ring_allreduce(arrays):
            np.testing.assert_allclose(out, expected, rtol=1e-10)

    def test_preserves_shape(self, rng):
        arrays = worker_arrays(rng, 4, shape=(3, 5, 2))
        for out in ring_allreduce(arrays):
            assert out.shape == (3, 5, 2)

    def test_inputs_not_mutated(self, rng):
        arrays = worker_arrays(rng, 4)
        copies = [a.copy() for a in arrays]
        ring_allreduce(arrays)
        for a, c in zip(arrays, copies):
            np.testing.assert_array_equal(a, c)

    def test_small_array_fewer_elements_than_workers(self, rng):
        arrays = [rng.normal(size=3) for _ in range(8)]
        expected = np.sum(arrays, axis=0)
        for out in ring_allreduce(arrays):
            np.testing.assert_allclose(out, expected, rtol=1e-10)

    def test_custom_associative_op(self, rng):
        arrays = [np.abs(a) for a in worker_arrays(rng, 5)]
        out = ring_allreduce(arrays, op=np.maximum)
        np.testing.assert_allclose(out[0], np.max(arrays, axis=0))

    def test_mismatched_shapes_rejected(self, rng):
        with pytest.raises(CollectiveError, match="shape"):
            ring_allreduce([np.zeros(3), np.zeros(4)])

    def test_mismatched_dtypes_rejected(self):
        with pytest.raises(CollectiveError, match="dtype"):
            ring_allreduce([np.zeros(3, dtype=np.float64),
                            np.zeros(3, dtype=np.float32)])

    def test_empty_world_rejected(self):
        with pytest.raises(CollectiveError):
            ring_allreduce([])


class TestTreeAllreduce:
    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8, 13])
    def test_sum_for_any_world_size(self, rng, p):
        arrays = worker_arrays(rng, p)
        expected = np.sum(arrays, axis=0)
        for out in tree_allreduce(arrays):
            np.testing.assert_allclose(out, expected, rtol=1e-10)

    def test_agrees_with_ring(self, rng):
        arrays = worker_arrays(rng, 6)
        np.testing.assert_allclose(
            tree_allreduce(arrays)[0], ring_allreduce(arrays)[0],
            rtol=1e-10)


class TestAllgather:
    def test_everyone_gets_everything_in_rank_order(self, rng):
        arrays = worker_arrays(rng, 4)
        gathered = allgather(arrays)
        assert len(gathered) == 4
        for per_rank in gathered:
            for rank, buf in enumerate(per_rank):
                np.testing.assert_array_equal(buf, arrays[rank])

    def test_heterogeneous_shapes_allowed(self, rng):
        # Top-K payloads differ per worker; allgather must carry them.
        arrays = [rng.normal(size=k) for k in (3, 7, 1)]
        gathered = allgather(arrays)
        assert [b.size for b in gathered[0]] == [3, 7, 1]

    def test_received_volume_linear_in_p(self, rng):
        for p in (2, 8):
            gathered = allgather(worker_arrays(rng, p, shape=(10,)))
            received = sum(b.size for b in gathered[0])
            assert received == 10 * p


class TestReduceScatterAndBroadcast:
    def test_reduce_scatter_chunks(self, rng):
        arrays = worker_arrays(rng, 4, shape=(20,))
        total = np.sum(arrays, axis=0)
        chunks = reduce_scatter(arrays)
        np.testing.assert_allclose(np.concatenate(chunks), total,
                                   rtol=1e-10)

    def test_broadcast_from_root(self, rng):
        arrays = worker_arrays(rng, 4)
        out = broadcast(arrays, root=2)
        for buf in out:
            np.testing.assert_array_equal(buf, arrays[2])

    def test_broadcast_bad_root(self, rng):
        with pytest.raises(CollectiveError):
            broadcast(worker_arrays(rng, 3), root=5)

    def test_parameter_server_equals_sum(self, rng):
        arrays = worker_arrays(rng, 5)
        out = parameter_server_reduce(arrays)
        np.testing.assert_allclose(out[0], np.sum(arrays, axis=0),
                                   rtol=1e-10)


class TestAllreduceSafety:
    def test_addition_is_safe(self, rng):
        assert is_allreduce_safe(lambda a, b: a + b,
                                 worker_arrays(rng, 5))

    def test_max_is_safe(self, rng):
        assert is_allreduce_safe(np.maximum, worker_arrays(rng, 5))

    def test_majority_vote_style_op_is_unsafe(self, rng):
        # sign(sign(a)+sign(b)) depends on grouping: Table 1's reason
        # signSGD cannot all-reduce.
        def vote(a, b):
            return np.sign(a + b)
        assert not is_allreduce_safe(vote, worker_arrays(rng, 5))

    def test_clipping_op_is_unsafe(self, rng):
        def clipped_sum(a, b):
            return np.clip(a + b, -0.5, 0.5)
        assert not is_allreduce_safe(clipped_sum, worker_arrays(rng, 5))
