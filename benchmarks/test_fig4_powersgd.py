"""Figure 4: PowerSGD scalability vs syncSGD (full paper sweep)."""

import math

from repro.experiments import run_fig4


def test_fig4_powersgd_scalability(run_once, show):
    result = run_once(run_fig4, iterations=110, warmup=10)
    show(result)

    # --- ResNets at batch 64: PowerSGD provides no win at any scale.
    for model in ("resnet50", "resnet101"):
        for gpus in (8, 16, 32, 64, 96):
            base = result.single(model=model, scheme="syncsgd",
                                 gpus=gpus)["mean_ms"]
            for rank in (4, 8, 16):
                comp = result.single(model=model,
                                     scheme=f"powersgd(rank={rank})",
                                     gpus=gpus)["mean_ms"]
                assert comp > 0.93 * base, (model, rank, gpus)

    # --- BERT at 96 GPUs: rank 4 ~ +23%, rank 8 ~ +14%, rank 16 loses.
    base = result.single(model="bert-base", scheme="syncsgd",
                         gpus=96)["mean_ms"]
    s4 = 1 - result.single(model="bert-base", scheme="powersgd(rank=4)",
                           gpus=96)["mean_ms"] / base
    s8 = 1 - result.single(model="bert-base", scheme="powersgd(rank=8)",
                           gpus=96)["mean_ms"] / base
    s16 = 1 - result.single(model="bert-base", scheme="powersgd(rank=16)",
                            gpus=96)["mean_ms"] / base
    assert 0.15 < s4 < 0.35     # paper: 23.1%
    assert 0.05 < s8 < 0.25     # paper: 13.9%
    assert s16 < 0.02           # paper: slower than syncSGD
    assert s4 > s8 > s16

    # --- All-reduce scalability: PowerSGD stays flat 8 -> 96 GPUs.
    for model in ("resnet50", "resnet101", "bert-base"):
        t8 = result.single(model=model, scheme="powersgd(rank=4)",
                           gpus=8)["mean_ms"]
        t96 = result.single(model=model, scheme="powersgd(rank=4)",
                            gpus=96)["mean_ms"]
        assert t96 < 1.15 * t8, model

    # No OOMs anywhere in this figure.
    assert not any(row["oom"] for row in result.rows)
    assert all(math.isfinite(row["mean_ms"]) for row in result.rows)
