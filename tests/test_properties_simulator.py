"""Property-based tests for simulator trace invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import make_scheme
from repro.hardware import cluster_for_gpus
from repro.models import get_model, mlp_model
from repro.simulator import (
    COMM_STREAM,
    COMPUTE_STREAM,
    DDPConfig,
    DDPSimulator,
)

scheme_specs = st.sampled_from([
    None,
    ("powersgd", {"rank": 4}),
    ("topk", {"fraction": 0.01}),
    ("signsgd", {}),
    ("fp16", {}),
    ("qsgd", {}),
])
gpu_counts = st.sampled_from([4, 8, 16, 32])
batches = st.sampled_from([8, 32, 64])
seeds = st.integers(min_value=0, max_value=2**16)


def simulate(scheme_spec, gpus, batch, seed, **cfg):
    scheme = (make_scheme(scheme_spec[0], **scheme_spec[1])
              if scheme_spec else None)
    sim = DDPSimulator(
        get_model("resnet50"), cluster_for_gpus(gpus), scheme=scheme,
        config=DDPConfig(check_memory=False, **cfg))
    return sim.simulate_iteration(batch, np.random.default_rng(seed))


@given(scheme_specs, gpu_counts, batches, seeds)
@settings(max_examples=40, deadline=None)
def test_trace_instants_are_ordered(scheme_spec, gpus, batch, seed):
    trace = simulate(scheme_spec, gpus, batch, seed)
    assert 0.0 < trace.forward_end <= trace.backward_end
    assert trace.backward_end <= trace.sync_end + 1e-12
    assert trace.sync_end <= trace.iteration_end


@given(scheme_specs, gpu_counts, batches, seeds)
@settings(max_examples=40, deadline=None)
def test_streams_never_self_overlap(scheme_spec, gpus, batch, seed):
    trace = simulate(scheme_spec, gpus, batch, seed)
    for stream in (COMPUTE_STREAM, COMM_STREAM):
        spans = trace.stream_spans(stream)
        for a, b in zip(spans, spans[1:]):
            assert a.end <= b.start + 1e-12, (stream, a, b)


@given(scheme_specs, gpu_counts, batches, seeds)
@settings(max_examples=40, deadline=None)
def test_spans_cover_sync_window(scheme_spec, gpus, batch, seed):
    trace = simulate(scheme_spec, gpus, batch, seed)
    last_end = max(s.end for s in trace.spans)
    assert last_end == pytest.approx(trace.iteration_end)
    assert min(s.start for s in trace.spans) == pytest.approx(0.0)


@given(gpu_counts, batches, seeds)
@settings(max_examples=30, deadline=None)
def test_same_seed_same_trace(gpus, batch, seed):
    a = simulate(None, gpus, batch, seed)
    b = simulate(None, gpus, batch, seed)
    assert a.sync_end == b.sync_end
    assert len(a.spans) == len(b.spans)


@given(scheme_specs, st.sampled_from([8, 16]), batches, seeds)
@settings(max_examples=30, deadline=None)
def test_zero_jitter_sync_time_deterministic(scheme_spec, gpus, batch,
                                             seed):
    a = simulate(scheme_spec, gpus, batch, seed,
                 compute_jitter=0.0, comm_jitter=0.0)
    b = simulate(scheme_spec, gpus, batch, seed + 1,
                 compute_jitter=0.0, comm_jitter=0.0)
    assert a.sync_time() == pytest.approx(b.sync_time())


@given(st.sampled_from([4, 16, 32]), batches, seeds)
@settings(max_examples=30, deadline=None)
def test_custom_models_simulate_cleanly(gpus, batch, seed):
    model = mlp_model("prop-mlp", 256, (512, 512), 16)
    sim = DDPSimulator(model, cluster_for_gpus(gpus),
                       config=DDPConfig(check_memory=False))
    trace = sim.simulate_iteration(batch, np.random.default_rng(seed))
    assert trace.iteration_end > 0
