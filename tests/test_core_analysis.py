"""Calibration, validation, ideal-scaling, and what-if analyses."""

import pytest

from repro.compression import PowerSGDScheme, SignSGDScheme, SyncSGDScheme
from repro.core import (
    PerfModelInputs,
    bandwidth_sweep,
    calibrate,
    communicable_bytes,
    compute_sweep,
    encode_tradeoff_grid,
    find_crossover_gbps,
    headroom_curve,
    required_compression,
    validate_scheme,
)
from repro.errors import ConfigurationError
from repro.hardware import cluster_for_gpus
from repro.models import get_model
from repro.units import gbps_to_bytes_per_s

BW10 = gbps_to_bytes_per_s(10)


@pytest.fixture(scope="module")
def rn50():
    return get_model("resnet50")


class TestCalibration:
    def test_report_fields_sane(self, rn50):
        report = calibrate(rn50, cluster_for_gpus(16), batch_size=64)
        assert 0 < report.min_bandwidth_bytes_per_s <= 1.25e9
        assert report.alpha_s > 0
        assert report.measured_gamma >= 1.0
        assert report.standalone_backward_s * 1e3 == pytest.approx(
            122, rel=0.05)

    def test_inputs_carry_world_size(self, rn50):
        report = calibrate(rn50, cluster_for_gpus(32), batch_size=64)
        assert report.inputs.world_size == 32
        assert report.inputs.batch_size == 64

    def test_describe_readable(self, rn50):
        text = calibrate(rn50, cluster_for_gpus(8)).describe()
        assert "Gbit/s" in text and "gamma" in text


class TestValidation:
    def test_allreducible_schemes_validate_tightly(self, rn50):
        clusters = [cluster_for_gpus(g) for g in (8, 32, 96)]
        for scheme in (SyncSGDScheme(), PowerSGDScheme(4)):
            curve = validate_scheme(rn50, scheme, clusters, batch_size=64,
                                    iterations=20, warmup=4)
            assert curve.median_error < 0.08, scheme

    def test_signsgd_error_larger_from_incast(self, rn50):
        clusters = [cluster_for_gpus(g) for g in (8, 32, 96)]
        sign = validate_scheme(rn50, SignSGDScheme(), clusters,
                               batch_size=64, iterations=20, warmup=4)
        sync = validate_scheme(rn50, SyncSGDScheme(), clusters,
                               batch_size=64, iterations=20, warmup=4)
        assert sign.max_error > 2 * sync.max_error

    def test_oom_points_skipped(self):
        bert = get_model("bert-base")
        clusters = [cluster_for_gpus(g) for g in (8, 96)]
        curve = validate_scheme(bert, SignSGDScheme(), clusters,
                                batch_size=12, iterations=8, warmup=2)
        assert [p.world_size for p in curve.points] == [8]


class TestIdealAnalysis:
    def test_communicable_bytes_inverts_ring_formula(self):
        from repro.collectives import ring_allreduce_time
        g = communicable_bytes(0.1, 64, BW10, alpha_s=25e-6)
        assert ring_allreduce_time(g, 64, BW10, 25e-6) == pytest.approx(0.1)

    def test_latency_dominated_returns_zero(self):
        assert communicable_bytes(1e-6, 96, BW10, alpha_s=1e-3) == 0.0

    def test_single_worker_is_infinite(self):
        assert communicable_bytes(0.1, 1, BW10) == float("inf")

    def test_required_ratio_small_at_10gbps(self, rn50):
        # The paper's Figure 9 finding: modest ratios suffice.
        rc = required_compression(rn50, 16, 64, BW10)
        assert 1.0 <= rc.required_ratio < 7.0

    def test_required_ratio_shrinks_with_batch(self, rn50):
        r16 = required_compression(rn50, 16, 64, BW10).required_ratio
        r64 = required_compression(rn50, 64, 64, BW10).required_ratio
        assert r64 < r16

    def test_bert_needs_under_2x_at_default_batch(self):
        bert = get_model("bert-base")
        rc = required_compression(bert, 12, 64, BW10)
        assert rc.required_ratio < 2.0

    def test_high_bandwidth_needs_no_compression(self, rn50):
        rc = required_compression(rn50, 64, 64, gbps_to_bytes_per_s(100))
        assert rc.required_ratio == 1.0

    def test_headroom_grows_with_model_size(self):
        sizes = {}
        for name, bs in (("resnet50", 64), ("resnet101", 64),
                         ("bert-base", 12)):
            pts = headroom_curve(get_model(name), [152], BW10,
                                 batch_size=bs)
            sizes[name] = pts[0].headroom_s
        assert sizes["resnet50"] < sizes["resnet101"] < sizes["bert-base"]

    def test_headroom_magnitudes_match_fig10(self):
        # ~50 / ~100 / ~200+ ms at large scale, 10 Gbit/s.
        pts = headroom_curve(get_model("resnet50"), [152], BW10,
                             batch_size=64)
        assert 0.03 < pts[0].headroom_s < 0.12
        pts = headroom_curve(get_model("bert-base"), [152], BW10,
                             batch_size=12)
        assert 0.15 < pts[0].headroom_s < 0.40

    def test_headroom_never_negative(self, rn50):
        for pt in headroom_curve(rn50, [8, 64, 152], BW10, batch_size=64):
            assert pt.headroom_s >= 0


class TestWhatIf:
    def test_bandwidth_sweep_speedup_decreases(self, rn50):
        inp = PerfModelInputs(world_size=64, bandwidth_bytes_per_s=BW10,
                              batch_size=64)
        pts = bandwidth_sweep(rn50, PowerSGDScheme(4),
                              [1, 5, 10, 20, 30], inp)
        speedups = [p.speedup for p in pts]
        assert speedups == sorted(speedups, reverse=True)

    def test_resnet50_crossover_near_paper(self, rn50):
        # Paper: ~9 Gbit/s; we assert the 6-14 band.
        inp = PerfModelInputs(world_size=64, bandwidth_bytes_per_s=BW10,
                              batch_size=64)
        pts = bandwidth_sweep(rn50, PowerSGDScheme(4),
                              list(range(1, 31)), inp)
        crossover = find_crossover_gbps(pts)
        assert crossover is not None
        assert 6 < crossover < 14

    def test_no_crossover_returns_none(self):
        bert = get_model("bert-base")
        inp = PerfModelInputs(world_size=64, bandwidth_bytes_per_s=BW10,
                              batch_size=12)
        pts = bandwidth_sweep(bert, PowerSGDScheme(4), [1, 2, 3], inp)
        assert find_crossover_gbps(pts) is None

    def test_compute_sweep_saturates_syncsgd(self, rn50):
        inp = PerfModelInputs(world_size=64, bandwidth_bytes_per_s=BW10,
                              batch_size=64)
        pts = compute_sweep(rn50, PowerSGDScheme(4), [1, 2, 4], inp)
        # syncSGD becomes comm-bound: under 15% gain from 2x->4x compute.
        assert pts[2].syncsgd_s > 0.85 * pts[1].syncsgd_s
        # compression keeps improving.
        assert pts[2].compressed_s < 0.6 * pts[0].compressed_s

    def test_compute_sweep_speedup_monotonic(self, rn50):
        inp = PerfModelInputs(world_size=64, bandwidth_bytes_per_s=BW10,
                              batch_size=64)
        pts = compute_sweep(rn50, PowerSGDScheme(4),
                            [1, 1.5, 2, 3, 4], inp)
        speedups = [p.speedup for p in pts]
        assert speedups == sorted(speedups)

    def test_compute_sweep_rejects_nonpositive(self, rn50):
        inp = PerfModelInputs(world_size=8, bandwidth_bytes_per_s=BW10)
        with pytest.raises(ConfigurationError):
            compute_sweep(rn50, PowerSGDScheme(4), [0.0], inp)

    def test_tradeoff_any_encode_cut_helps(self, rn50):
        # The Figure 13 conclusion: k=2,3,4 all beat k=1 at every l.
        inp = PerfModelInputs(world_size=64, bandwidth_bytes_per_s=BW10,
                              batch_size=64)
        pts = encode_tradeoff_grid(rn50, PowerSGDScheme(4),
                                   [1, 2, 3, 4], [1, 2, 3], inp)
        by_kl = {(p.k, p.l): p.predicted_s for p in pts}
        for l in (1.0, 2.0, 3.0):
            for k in (2.0, 3.0, 4.0):
                assert by_kl[(k, l)] < by_kl[(1.0, l)]

    def test_tradeoff_wire_capped_at_dense(self, rn50):
        # Extreme l*k cannot exceed uncompressed communication.
        inp = PerfModelInputs(world_size=64, bandwidth_bytes_per_s=BW10,
                              batch_size=64)
        pts = encode_tradeoff_grid(rn50, PowerSGDScheme(4),
                                   [4], [1000], inp)
        sync = pts[0].syncsgd_s
        # Even fully decompressed, sequential comm is bounded by the
        # dense all-reduce plus compute; sanity: within 3x of syncSGD.
        assert pts[0].predicted_s < 3 * sync

    def test_tradeoff_validates_k_and_l(self, rn50):
        inp = PerfModelInputs(world_size=8, bandwidth_bytes_per_s=BW10)
        with pytest.raises(ConfigurationError):
            encode_tradeoff_grid(rn50, PowerSGDScheme(4), [0.5], [1], inp)
        with pytest.raises(ConfigurationError):
            encode_tradeoff_grid(rn50, PowerSGDScheme(4), [1], [0.5], inp)
