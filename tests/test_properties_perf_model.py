"""Property-based tests for the performance model and schemes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    PowerSGDScheme,
    SignSGDScheme,
    SyncSGDScheme,
    TopKScheme,
    make_scheme,
)
from repro.core import PerfModelInputs, predict, syncsgd_time
from repro.models import get_model
from repro.units import gbps_to_bytes_per_s

MODELS = ("resnet50", "resnet101", "bert-base")

world_sizes = st.sampled_from([1, 4, 8, 16, 32, 64, 96, 128])
bandwidths = st.floats(min_value=0.5, max_value=100.0)
batches = st.sampled_from([1, 8, 16, 32, 64])
model_names = st.sampled_from(MODELS)


def make_inputs(p, gbps, bs):
    return PerfModelInputs(world_size=p,
                           bandwidth_bytes_per_s=gbps_to_bytes_per_s(gbps),
                           batch_size=bs)


@given(model_names, world_sizes, bandwidths, batches)
@settings(max_examples=60, deadline=None)
def test_prediction_always_positive_and_bounded_below_by_compute(
        name, p, gbps, bs):
    from repro.compute import ComputeModel
    from repro.hardware import V100
    model = get_model(name)
    pred = syncsgd_time(model, make_inputs(p, gbps, bs))
    t_comp = ComputeModel(model, V100).backward_time(bs)
    assert pred.total >= t_comp - 1e-12
    assert pred.total > 0


@given(model_names, world_sizes, batches,
       st.floats(min_value=1.0, max_value=20.0),
       st.floats(min_value=1.05, max_value=4.0))
@settings(max_examples=60, deadline=None)
def test_more_bandwidth_never_slower(name, p, bs, gbps, factor):
    model = get_model(name)
    slow = syncsgd_time(model, make_inputs(p, gbps, bs)).total
    fast = syncsgd_time(model, make_inputs(p, gbps * factor, bs)).total
    assert fast <= slow + 1e-12


@given(model_names, world_sizes, bandwidths, batches)
@settings(max_examples=60, deadline=None)
def test_compressed_prediction_decomposes(name, p, gbps, bs):
    model = get_model(name)
    pred = predict(model, PowerSGDScheme(4), make_inputs(p, gbps, bs))
    assert pred.total == pytest.approx(
        pred.compute + pred.encode_decode + pred.comm_exposed, rel=1e-9)


@given(model_names, bandwidths, batches,
       st.sampled_from([(4, 8), (8, 16), (16, 96), (32, 64)]))
@settings(max_examples=60, deadline=None)
def test_gather_schemes_never_get_faster_with_scale(name, gbps, bs, pair):
    small_p, large_p = pair
    model = get_model(name)
    scheme = SignSGDScheme()
    small = predict(model, scheme, make_inputs(small_p, gbps, bs)).total
    large = predict(model, scheme, make_inputs(large_p, gbps, bs)).total
    assert large >= small - 1e-12


@given(st.sampled_from(["topk", "randomk", "dgc"]),
       st.floats(min_value=0.001, max_value=0.4),
       st.floats(min_value=1.5, max_value=5.0))
@settings(max_examples=40, deadline=None)
def test_sparser_is_smaller_on_wire(scheme_name, fraction, factor):
    model = get_model("resnet50")
    sparse = make_scheme(scheme_name, fraction=fraction).cost(model, 16)
    denser = make_scheme(scheme_name,
                         fraction=min(1.0, fraction * factor)).cost(model, 16)
    assert sparse.wire_bytes <= denser.wire_bytes + 1e-9


@given(st.integers(min_value=1, max_value=32))
@settings(max_examples=30, deadline=None)
def test_powersgd_wire_monotone_in_rank(rank):
    model = get_model("resnet50")
    a = PowerSGDScheme(rank).cost(model, 16).wire_bytes
    b = PowerSGDScheme(rank + 1).cost(model, 16).wire_bytes
    assert a <= b


@given(model_names, world_sizes)
@settings(max_examples=40, deadline=None)
def test_every_scheme_cost_is_sane(name, p):
    from repro.compression.registry import _SCHEMES
    model = get_model(name)
    for scheme_name in _SCHEMES:
        cost = make_scheme(scheme_name).cost(model, p)
        assert cost.wire_bytes > 0
        assert cost.encode_decode_s >= 0
        assert cost.messages >= 1
        assert cost.gather_stack_bytes >= 0
        if cost.all_reducible:
            assert cost.gather_stack_bytes == 0


@given(model_names, st.sampled_from([2, 8, 32, 96]), bandwidths, batches)
@settings(max_examples=40, deadline=None)
def test_speedup_definition_consistent(name, p, gbps, bs):
    from repro.core import speedup_over_syncsgd
    model = get_model(name)
    inputs = make_inputs(p, gbps, bs)
    scheme = TopKScheme(0.01)
    s = speedup_over_syncsgd(model, scheme, inputs)
    base = syncsgd_time(model, inputs).total
    cand = predict(model, scheme, inputs).total
    assert s == pytest.approx((base - cand) / base, rel=1e-9)
