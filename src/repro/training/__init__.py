"""Numeric training substrate: numpy NN + distributed compressed training."""

from .data import Dataset, concentric_rings, gaussian_blobs, sparse_logits
from .distributed import DistributedTrainer, TrainHistory, train_with_method
from .nn import MLP, MLPConfig, cross_entropy, softmax
from .optim import (
    SGD,
    Adam,
    ConstantLR,
    LRSchedule,
    Optimizer,
    StepDecayLR,
    WarmupCosineLR,
)

__all__ = [
    "MLP", "MLPConfig", "softmax", "cross_entropy",
    "Dataset", "gaussian_blobs", "concentric_rings", "sparse_logits",
    "DistributedTrainer", "TrainHistory", "train_with_method",
    "Optimizer", "SGD", "Adam",
    "LRSchedule", "ConstantLR", "StepDecayLR", "WarmupCosineLR",
]
