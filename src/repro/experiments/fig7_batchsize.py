"""Figure 7: the utility of compression shrinks as batch size grows.

Larger per-GPU batches lengthen the backward pass, giving syncSGD more
computation to hide communication under (and improving GPU efficiency),
while compression's encode cost stays constant.  The paper's numbers,
which the benchmark asserts as shapes:

* ResNet-101 + PowerSGD rank 4: ~+40 % at batch 16, ~+20 % at 32,
  ~-10 % at 64;
* BERT at 64 GPUs: +24 % at batch 10 falls to +18 % at batch 12.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..compression.schemes import PowerSGDScheme, SyncSGDScheme
from ..engine import ExperimentEngine, SimJob
from ..hardware import cluster_for_gpus
from ..models import get_model
from .runner import ExperimentResult, speedup

#: (model, gpus, batch sizes) the figure and §3.3 text report.
FIG7_SWEEPS: Tuple[Tuple[str, int, Tuple[int, ...]], ...] = (
    ("resnet101", 64, (16, 32, 64)),
    ("bert-base", 64, (10, 12)),
)


def run_fig7(rank: int = 4,
             sweeps: Sequence[Tuple[str, int, Tuple[int, ...]]] = FIG7_SWEEPS,
             iterations: int = 40, warmup: int = 5,
             seed: int = 0,
             engine: Optional[ExperimentEngine] = None) -> ExperimentResult:
    """PowerSGD speedup over syncSGD across batch sizes."""
    eng = engine if engine is not None else ExperimentEngine()
    jobs: List[SimJob] = []
    for model_name, num_gpus, batch_sizes in sweeps:
        model = get_model(model_name)
        cluster = cluster_for_gpus(num_gpus)
        for batch_size in batch_sizes:
            for scheme in (SyncSGDScheme(), PowerSGDScheme(rank=rank)):
                jobs.append(SimJob(
                    model=model, cluster=cluster, scheme=scheme,
                    batch_size=batch_size, iterations=iterations,
                    warmup=warmup, seed=seed))

    outcomes = eng.run_outcomes(jobs)
    rows: List[Dict[str, Any]] = []
    # Jobs were appended baseline-then-compressed per batch size.
    for base_out, comp_out in zip(outcomes[0::2], outcomes[1::2]):
        base = base_out.unwrap()
        comp = comp_out.unwrap()
        job = base_out.job
        rows.append({
            "model": job.model.name,
            "gpus": job.cluster.world_size,
            "batch_size": job.batch_size,
            "syncsgd_ms": base.mean * 1e3,
            "powersgd_ms": comp.mean * 1e3,
            "speedup": speedup(base.mean, comp.mean),
        })
    return ExperimentResult(
        experiment_id="fig7",
        title=f"Effect of batch size on PowerSGD rank-{rank} speedup",
        columns=("model", "gpus", "batch_size", "syncsgd_ms",
                 "powersgd_ms", "speedup"),
        rows=tuple(rows),
    )
