"""Span-based run tracing behind a process-global tracer.

Where :mod:`repro.telemetry.metrics` answers *how much* (counters,
gauges, histograms), tracing answers *when* and *inside what*: explicit
start/end spans with trace/span ids and string labels, covering the CLI
entry, each exhibit, the engine's submit -> queue -> worker-exec ->
cache-store path, family/chunk batching and individual simulator runs.

The design mirrors the metrics registry's null-backend pattern:

* the default tracer is a :class:`NullTracer` whose handles are shared
  no-op singletons.  Disabled tracing costs one attribute load and a
  no-op call — it never touches an RNG, never reads the clock, and
  therefore keeps every simulated timeline bit-identical to an
  untraced run;
* :func:`enable_tracing` installs a :class:`TraceRecorder` that records
  :class:`TraceSpan` rows with absolute unix timestamps, suitable for
  Perfetto/Chrome export via :func:`repro.simulator.export.write_trace_spans`.

Cross-process propagation is cooperative: a parent serializes
``(trace_id, parent_span_id, submitted_unix_s)`` into the job payload
(see ``_traced_call`` in :mod:`repro.engine.engine`), the worker
installs a local recorder seeded with that context, emits spans under
its own pid, and ships them back with the result; the parent merges
them into its recorder.  Spans therefore survive retries and pool
rebuilds — a killed attempt simply contributes no spans, and the
retried attempt lands as a sibling under the same parent job span.
"""

from __future__ import annotations

import itertools
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..errors import ConfigurationError

#: Wire form of a span context handed to pool workers:
#: ``(trace_id, parent_span_id, submitted_unix_s)``.
TraceContext = Tuple[str, str, float]

#: Per-process span id counter; ids are pid-qualified so spans minted in
#: pool workers can never collide with the parent's.
_IDS = itertools.count(1)


def _new_span_id() -> str:
    return f"{os.getpid():x}.{next(_IDS):x}"


def _new_trace_id() -> str:
    # Wall-clock nanoseconds + pid: unique enough across runs without
    # consuming randomness (tracing must never perturb an RNG stream).
    return f"{os.getpid():x}-{time.time_ns():x}"


@dataclass(frozen=True)
class TraceSpan:
    """One finished span: a named interval on a track, with lineage."""

    name: str
    track: str
    start_unix_s: float
    end_unix_s: float
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    pid: int
    labels: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("span name must be non-empty")
        if not self.track:
            raise ConfigurationError("span track must be non-empty")
        if self.end_unix_s < self.start_unix_s:
            raise ConfigurationError(
                f"span {self.name!r} ends before it starts "
                f"({self.end_unix_s} < {self.start_unix_s})")

    @property
    def duration_s(self) -> float:
        return self.end_unix_s - self.start_unix_s


class ActiveSpan:
    """Mutable handle for a span that has started but not finished.

    Usable either explicitly (``begin()`` ... ``finish()``) or as a
    context manager (``with tracer.span(...)``), in which case the span
    also becomes the implicit parent of spans opened inside the block.
    """

    __slots__ = ("_tracer", "name", "track", "span_id", "parent_id",
                 "start_unix_s", "_labels")

    def __init__(self, tracer: "TraceRecorder", name: str, track: str,
                 parent_id: Optional[str],
                 labels: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.track = track
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.start_unix_s = time.time()
        self._labels = {str(k): str(v) for k, v in labels.items()}

    def annotate(self, **labels: Any) -> None:
        """Attach (or overwrite) labels before the span finishes."""
        for k, v in labels.items():
            self._labels[str(k)] = str(v)

    def __enter__(self) -> "ActiveSpan":
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self._tracer._pop(self)
        if exc_type is not None:
            self.annotate(error=exc_type.__name__)
        self._tracer.finish(self)
        return False


class _NullSpan:
    """Shared do-nothing span handle when tracing is disabled."""

    __slots__ = ()

    name = ""
    track = ""
    span_id = ""
    parent_id = None
    start_unix_s = 0.0

    def annotate(self, **labels: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled backend: every handle is the same no-op singleton."""

    enabled = False
    trace_id = ""

    def span(self, name: str, track: str = "engine",
             **labels: Any) -> _NullSpan:
        return _NULL_SPAN

    def begin(self, name: str, track: str = "engine",
              parent_id: Optional[str] = None, **labels: Any) -> _NullSpan:
        return _NULL_SPAN

    def finish(self, span: Any, **labels: Any) -> None:
        pass

    def add_span(self, name: str, track: str, start_unix_s: float,
                 end_unix_s: float, parent_id: Optional[str] = None,
                 **labels: Any) -> None:
        pass

    def add_iteration_trace(self, trace: Any, base_unix_s: float,
                            parent_id: Optional[str] = None,
                            track_prefix: str = "sim:") -> None:
        pass

    def merge(self, spans: Iterable[TraceSpan]) -> None:
        pass

    def drain(self) -> Tuple[TraceSpan, ...]:
        return ()

    @property
    def spans(self) -> Tuple[TraceSpan, ...]:
        return ()


class TraceRecorder:
    """Live tracer: records finished spans in completion order.

    ``root_parent_id`` seeds the implicit parent for spans opened while
    the stack is empty — pool workers set it to the submitting job's
    span id so their local spans parent across the process boundary.
    """

    enabled = True

    def __init__(self, trace_id: Optional[str] = None,
                 root_parent_id: Optional[str] = None) -> None:
        self.trace_id = trace_id if trace_id else _new_trace_id()
        self.root_parent_id = root_parent_id
        self._spans: List[TraceSpan] = []
        self._stack: List[ActiveSpan] = []

    # -- span lifecycle ------------------------------------------------

    def _current_parent(self) -> Optional[str]:
        if self._stack:
            return self._stack[-1].span_id
        return self.root_parent_id

    def span(self, name: str, track: str = "engine",
             **labels: Any) -> ActiveSpan:
        """A context-manager span: parents to the innermost open span."""
        return ActiveSpan(self, name, track, self._current_parent(), labels)

    def begin(self, name: str, track: str = "engine",
              parent_id: Optional[str] = None, **labels: Any) -> ActiveSpan:
        """Start an explicit span; pair with :meth:`finish`.

        Unlike ``with span(...)`` it does not become the implicit
        parent of later spans, so overlapping lifetimes (one span per
        in-flight pool job) are expressible.
        """
        if parent_id is None:
            parent_id = self._current_parent()
        return ActiveSpan(self, name, track, parent_id, labels)

    def finish(self, span: ActiveSpan, **labels: Any) -> TraceSpan:
        if labels:
            span.annotate(**labels)
        done = TraceSpan(
            name=span.name, track=span.track,
            start_unix_s=span.start_unix_s, end_unix_s=time.time(),
            trace_id=self.trace_id, span_id=span.span_id,
            parent_id=span.parent_id, pid=os.getpid(),
            labels=tuple(sorted(span._labels.items())))
        self._spans.append(done)
        return done

    def add_span(self, name: str, track: str, start_unix_s: float,
                 end_unix_s: float, parent_id: Optional[str] = None,
                 **labels: Any) -> TraceSpan:
        """Record an already-timed interval (e.g. queue wait measured
        across processes, or reconstructed simulator spans)."""
        if parent_id is None:
            parent_id = self._current_parent()
        done = TraceSpan(
            name=name, track=track,
            start_unix_s=start_unix_s,
            # Cross-process clocks can disagree by a hair; clamp rather
            # than reject so a skewed queue-wait never aborts a run.
            end_unix_s=max(end_unix_s, start_unix_s),
            trace_id=self.trace_id, span_id=_new_span_id(),
            parent_id=parent_id, pid=os.getpid(),
            labels=tuple(sorted((str(k), str(v))
                                for k, v in labels.items())))
        self._spans.append(done)
        return done

    def add_iteration_trace(self, trace: Any, base_unix_s: float,
                            parent_id: Optional[str] = None,
                            track_prefix: str = "sim:") -> None:
        """Project one simulator :class:`~repro.simulator.trace.IterationTrace`
        onto the timeline: simulated seconds are plotted as wall seconds
        offset from ``base_unix_s``, one track per simulator stream."""
        for span in trace.spans:
            labels: Dict[str, Any] = {}
            if span.bytes_on_wire:
                labels["bytes_on_wire"] = repr(span.bytes_on_wire)
            self.add_span(span.label, track=track_prefix + span.stream,
                          start_unix_s=base_unix_s + span.start,
                          end_unix_s=base_unix_s + span.end,
                          parent_id=parent_id, **labels)

    # -- implicit-parent stack ----------------------------------------

    def _push(self, span: ActiveSpan) -> None:
        self._stack.append(span)

    def _pop(self, span: ActiveSpan) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    # -- collection ----------------------------------------------------

    @property
    def spans(self) -> Tuple[TraceSpan, ...]:
        return tuple(self._spans)

    def merge(self, spans: Iterable[TraceSpan]) -> None:
        """Adopt spans recorded elsewhere (typically a pool worker)."""
        self._spans.extend(spans)

    def drain(self) -> Tuple[TraceSpan, ...]:
        """All recorded spans, clearing the recorder."""
        out = tuple(self._spans)
        self._spans.clear()
        return out


#: The process-global tracer instrumented code records into.
_TRACER: Any = NullTracer()


def get_tracer() -> Any:
    """The currently installed tracer (never ``None``)."""
    return _TRACER


def set_tracer(tracer: Any) -> Any:
    """Install ``tracer`` process-wide; returns the previous one."""
    global _TRACER
    if tracer is None:
        raise ConfigurationError(
            "tracer must not be None; use disable_tracing() for the "
            "null backend")
    previous = _TRACER
    _TRACER = tracer
    return previous


def enable_tracing(trace_id: Optional[str] = None) -> TraceRecorder:
    """Install (and return) a fresh live tracer."""
    tracer = TraceRecorder(trace_id=trace_id)
    set_tracer(tracer)
    return tracer


def disable_tracing() -> None:
    """Reinstall the null backend."""
    set_tracer(NullTracer())
