"""Hierarchical (two-level) all-reduce: cost and numeric."""

import numpy as np
import pytest

from repro.collectives import (
    hierarchical_allreduce,
    hierarchical_allreduce_time,
    ring_allreduce,
    ring_allreduce_time,
)
from repro.errors import CollectiveError, ConfigurationError

NIC = 1.25e9
NVLINK = 300e9
ALPHA = 10e-6


class TestCost:
    def test_beats_flat_ring_at_scale(self):
        # 24 nodes x 4 GPUs: hops over 24 leaders, not 96 ranks.
        hier = hierarchical_allreduce_time(100e6, 24, 4, NIC, NVLINK, ALPHA)
        flat = ring_allreduce_time(100e6, 96, NIC, ALPHA)
        assert hier < flat

    def test_single_gpu_per_node_equals_flat(self):
        hier = hierarchical_allreduce_time(16e6, 8, 1, NIC, NVLINK, ALPHA)
        flat = ring_allreduce_time(16e6, 8, NIC, ALPHA)
        assert hier == pytest.approx(flat)

    def test_single_node_is_nvlink_only(self):
        t = hierarchical_allreduce_time(100e6, 1, 4, NIC, NVLINK, ALPHA)
        assert t < 100e6 / NIC  # way below one NIC pass

    def test_inter_node_bandwidth_dominates(self):
        t = hierarchical_allreduce_time(100e6, 24, 4, NIC, NVLINK, ALPHA)
        inter = ring_allreduce_time(100e6, 24, NIC, ALPHA)
        assert t == pytest.approx(inter, rel=0.02)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            hierarchical_allreduce_time(-1, 4, 4, NIC, NVLINK, ALPHA)
        with pytest.raises(ConfigurationError):
            hierarchical_allreduce_time(1, 0, 4, NIC, NVLINK, ALPHA)
        with pytest.raises(ConfigurationError):
            hierarchical_allreduce_time(1, 4, 4, 0, NVLINK, ALPHA)


class TestNumeric:
    @pytest.mark.parametrize("nodes,gpn", [(1, 1), (1, 4), (2, 4),
                                           (3, 2), (4, 1)])
    def test_equals_sum(self, rng, nodes, gpn):
        arrays = [rng.normal(size=17) for _ in range(nodes * gpn)]
        expected = np.sum(arrays, axis=0)
        for out in hierarchical_allreduce(arrays, gpus_per_node=gpn):
            np.testing.assert_allclose(out, expected, rtol=1e-10)

    def test_agrees_with_flat_ring(self, rng):
        arrays = [rng.normal(size=31) for _ in range(8)]
        hier = hierarchical_allreduce(arrays, gpus_per_node=4)[0]
        flat = ring_allreduce(arrays)[0]
        np.testing.assert_allclose(hier, flat, rtol=1e-10)

    def test_world_must_divide(self, rng):
        arrays = [rng.normal(size=4) for _ in range(6)]
        with pytest.raises(CollectiveError, match="multiple"):
            hierarchical_allreduce(arrays, gpus_per_node=4)

    def test_empty_world_rejected(self):
        with pytest.raises(CollectiveError):
            hierarchical_allreduce([], gpus_per_node=4)


class TestSimulatorIntegration:
    def test_hierarchical_algorithm_accepted(self):
        from repro.hardware import cluster_for_gpus
        from repro.models import get_model
        from repro.simulator import DDPConfig, DDPSimulator
        cfg = DDPConfig(allreduce_algorithm="hierarchical",
                        compute_jitter=0.0, comm_jitter=0.0)
        sim = DDPSimulator(get_model("resnet50"), cluster_for_gpus(32),
                           config=cfg)
        hier = sim.run(64, iterations=10, warmup=2).mean
        flat = DDPSimulator(
            get_model("resnet50"), cluster_for_gpus(32),
            config=DDPConfig(compute_jitter=0.0, comm_jitter=0.0)).run(
            64, iterations=10, warmup=2).mean
        # Different algorithm, same order of magnitude, not slower.
        assert hier <= flat * 1.02
